// Package dfggen is a seeded, deterministic property-based generator of
// random basic-block DFGs, the input side of the differential fuzzing
// harness (internal/difftest). Every block it produces is a valid ir.Block
// — operands refer only to earlier value-producing nodes or external
// inputs, arities match, live-out marks sit on value nodes — so the
// engines under test can be handed generator output directly.
//
// Determinism contract: Block and Application consume randomness only
// through the *rand.Rand they are given, so a fixed seed reproduces the
// exact same block on every run, platform and Go release (math/rand's
// explicit-source sequence is stable). The differential suite, the fuzz
// targets and the soak CLI all rely on this to turn a seed number into a
// reproducer.
//
// The shape knobs (Params) cover what the engines' edge cases care about:
// node counts, fan-in mix (node results vs external inputs vs immediates),
// forbidden-op (memory) placement, operand locality (deep chains vs broad
// fan-out) and structured motifs — diamonds, chains and reconvergence —
// that stress convexity checking far more than uniform random wiring does.
package dfggen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ir"
)

// Params shape the generated blocks. The zero value is not useful; start
// from DefaultParams.
type Params struct {
	// MinNodes and MaxNodes bound the node count (inclusive). Motif
	// injection may overshoot MaxNodes by at most the largest motif
	// size minus one.
	MinNodes, MaxNodes int
	// MaxInputs is the external-input pool size; generated operands draw
	// input indices uniformly from [0, MaxInputs).
	MaxInputs int
	// MemFrac is the probability a generated node is a memory operation
	// (load or store, evenly split) — the forbidden ops every engine
	// must keep out of its cuts.
	MemFrac float64
	// ConstFrac is the probability a generated node materializes a
	// constant (OpConst, zero-arity).
	ConstFrac float64
	// ImmFrac is the per-operand probability of an immediate operand
	// (no data dependence, no register port).
	ImmFrac float64
	// InputFrac is the per-operand probability of referring to an
	// external input even when earlier node values exist.
	InputFrac float64
	// Locality, when positive, biases node operands to the most recent
	// Locality value-producing nodes, growing deep chains; 0 picks
	// uniformly over all earlier values, growing broad shallow graphs.
	Locality int
	// LiveOutFrac is the probability an internally consumed value node
	// is additionally marked live out of the block. Dead value nodes
	// (no consumers) are marked live-out with high probability
	// regardless, so generated blocks mostly compute something.
	LiveOutFrac float64
	// MotifFrac is the per-step probability of emitting a structured
	// motif (diamond, chain, reconvergence) instead of a single node.
	MotifFrac float64
	// MinBlocks and MaxBlocks bound Application's block count.
	MinBlocks, MaxBlocks int
}

// DefaultParams returns the differential suite's shape: small enough that
// the exact joint search stays fast as the reference oracle, with every
// structural feature of real kernels present.
func DefaultParams() Params {
	return Params{
		MinNodes: 4, MaxNodes: 14,
		MaxInputs: 4,
		MemFrac:   0.12, ConstFrac: 0.08,
		ImmFrac: 0.10, InputFrac: 0.25,
		Locality:    6,
		LiveOutFrac: 0.15,
		MotifFrac:   0.25,
		MinBlocks:   2, MaxBlocks: 5,
	}
}

// normalized clamps p into a range where generation always succeeds, so
// fuzzers may mutate the knobs freely.
func (p Params) normalized() Params {
	clampInt := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	clampFrac := func(v float64) float64 {
		if !(v >= 0) { // also catches NaN
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	p.MinNodes = clampInt(p.MinNodes, 1, 1<<12)
	p.MaxNodes = clampInt(p.MaxNodes, p.MinNodes, 1<<12)
	p.MaxInputs = clampInt(p.MaxInputs, 1, 64)
	p.MemFrac = clampFrac(p.MemFrac)
	p.ConstFrac = clampFrac(p.ConstFrac)
	if p.MemFrac+p.ConstFrac > 0.9 {
		// Keep most nodes computational so blocks have structure.
		scale := 0.9 / (p.MemFrac + p.ConstFrac)
		p.MemFrac *= scale
		p.ConstFrac *= scale
	}
	p.ImmFrac = clampFrac(p.ImmFrac)
	p.InputFrac = clampFrac(p.InputFrac)
	p.Locality = clampInt(p.Locality, 0, 1<<12)
	p.LiveOutFrac = clampFrac(p.LiveOutFrac)
	p.MotifFrac = clampFrac(p.MotifFrac)
	p.MinBlocks = clampInt(p.MinBlocks, 1, 64)
	p.MaxBlocks = clampInt(p.MaxBlocks, p.MinBlocks, 64)
	return p
}

// arithOps is the computational opcode pool (everything except const and
// the memory ops, which have their own draw probabilities).
var arithOps = []ir.Op{
	ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpNeg,
	ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot,
	ir.OpShl, ir.OpShrL, ir.OpShrA,
	ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
	ir.OpSelect, ir.OpMin, ir.OpMax,
}

// gen is the in-progress block under construction.
type gen struct {
	rng *rand.Rand
	p   Params
	// nodes built so far; valueNodes indexes those producing a value.
	nodes      []ir.Node
	valueNodes []int
	// consumed[i] reports whether node i's value has a consumer.
	consumed []bool
}

// valueOperand picks an operand for a computational slot: an immediate,
// an external input, or an earlier node value (locality-biased).
func (g *gen) valueOperand(allowImm bool) ir.Operand {
	r := g.rng.Float64()
	if allowImm && r < g.p.ImmFrac {
		return ir.ImmOperand(int32(g.rng.Intn(509) - 254))
	}
	if len(g.valueNodes) == 0 || g.rng.Float64() < g.p.InputFrac {
		return ir.InputRef(g.rng.Intn(g.p.MaxInputs))
	}
	return ir.NodeRef(g.pickValueNode())
}

// pickValueNode picks an earlier value-producing node, biased to the most
// recent Locality ones when configured.
func (g *gen) pickValueNode() int {
	n := len(g.valueNodes)
	w := n
	if g.p.Locality > 0 && g.p.Locality < n {
		w = g.p.Locality
	}
	id := g.valueNodes[n-1-g.rng.Intn(w)]
	g.consumed[id] = true
	return id
}

// emit appends one node and does the value bookkeeping.
func (g *gen) emit(nd ir.Node) int {
	id := len(g.nodes)
	g.nodes = append(g.nodes, nd)
	g.consumed = append(g.consumed, false)
	if nd.Op.HasValue() {
		g.valueNodes = append(g.valueNodes, id)
	}
	return id
}

// emitArith emits one random computational node.
func (g *gen) emitArith() int {
	op := arithOps[g.rng.Intn(len(arithOps))]
	nd := ir.Node{Op: op}
	for a := 0; a < op.Arity(); a++ {
		// At most one immediate operand per node keeps the graphs
		// connected; the first slot of a shift/select stays a value so
		// the op has a real dependence.
		nd.Args = append(nd.Args, g.valueOperand(a > 0 || op.Arity() == 1))
	}
	return g.emit(nd)
}

// emitOne emits a single random node of any kind.
func (g *gen) emitOne() {
	r := g.rng.Float64()
	switch {
	case r < g.p.MemFrac:
		if g.rng.Intn(2) == 0 {
			g.emit(ir.Node{Op: ir.OpLoad, Args: []ir.Operand{g.valueOperand(true)}})
		} else {
			g.emit(ir.Node{Op: ir.OpStore, Args: []ir.Operand{g.valueOperand(true), g.valueOperand(false)}})
		}
	case r < g.p.MemFrac+g.p.ConstFrac:
		g.emit(ir.Node{Op: ir.OpConst, Imm: int32(g.rng.Intn(1 << 16))})
	default:
		g.emitArith()
	}
}

// binOp draws a two-operand computational opcode.
func (g *gen) binOp() ir.Op {
	for {
		op := arithOps[g.rng.Intn(len(arithOps))]
		if op.Arity() == 2 {
			return op
		}
	}
}

// emitMotif emits one structured sub-graph. Motifs are what make random
// blocks exercise convexity: uniform wiring rarely produces the
// A→B→C-with-A→C shapes whose middles a cut must not skip.
func (g *gen) emitMotif() {
	root := g.valueOperand(false)
	switch g.rng.Intn(3) {
	case 0: // diamond: two independent children of one root, rejoined.
		a := g.emit(ir.Node{Op: g.binOp(), Args: []ir.Operand{root, g.valueOperand(true)}})
		b := g.emit(ir.Node{Op: g.binOp(), Args: []ir.Operand{root, g.valueOperand(true)}})
		g.consumed[a], g.consumed[b] = true, true
		g.emit(ir.Node{Op: g.binOp(), Args: []ir.Operand{ir.NodeRef(a), ir.NodeRef(b)}})
	case 1: // chain: a deep dependent sequence.
		prev := root
		for k := 2 + g.rng.Intn(3); k > 0; k-- {
			id := g.emit(ir.Node{Op: g.binOp(), Args: []ir.Operand{prev, g.valueOperand(true)}})
			g.consumed[id] = true
			prev = ir.NodeRef(id)
		}
	default: // reconvergence: two 2-deep paths from one root, rejoined.
		a1 := g.emit(ir.Node{Op: g.binOp(), Args: []ir.Operand{root, g.valueOperand(true)}})
		g.consumed[a1] = true
		a2 := g.emit(ir.Node{Op: g.binOp(), Args: []ir.Operand{ir.NodeRef(a1), g.valueOperand(true)}})
		b1 := g.emit(ir.Node{Op: g.binOp(), Args: []ir.Operand{root, g.valueOperand(true)}})
		g.consumed[a2], g.consumed[b1] = true, true
		g.emit(ir.Node{Op: g.binOp(), Args: []ir.Operand{ir.NodeRef(a2), ir.NodeRef(b1)}})
	}
}

// Block generates one random valid block, drawing all randomness from rng.
func Block(rng *rand.Rand, p Params) *ir.Block {
	p = p.normalized()
	target := p.MinNodes + rng.Intn(p.MaxNodes-p.MinNodes+1)
	g := &gen{rng: rng, p: p}
	for len(g.nodes) < target {
		if rng.Float64() < p.MotifFrac && target-len(g.nodes) >= 3 {
			g.emitMotif()
		} else {
			g.emitOne()
		}
	}
	liveOut := graph.NewBitSet(len(g.nodes))
	anyOut := false
	for id, nd := range g.nodes {
		if !nd.Op.HasValue() {
			continue
		}
		if !g.consumed[id] {
			// Dead value: almost always live-out, so the node matters.
			if rng.Float64() < 0.9 {
				liveOut.Set(id)
				anyOut = true
			}
		} else if rng.Float64() < p.LiveOutFrac {
			liveOut.Set(id)
			anyOut = true
		}
	}
	if !anyOut {
		// Guarantee at least one observable value when any exists, so
		// the block is never pure dead code.
		if n := len(g.valueNodes); n > 0 {
			liveOut.Set(g.valueNodes[n-1])
		}
	}
	blk := &ir.Block{
		Name:      fmt.Sprintf("gen%08x", rng.Uint32()),
		Nodes:     g.nodes,
		NumInputs: p.MaxInputs,
		Freq:      float64(1 + rng.Intn(1000)),
		LiveOut:   liveOut,
	}
	if err := ir.FinishBlock(blk); err != nil {
		// The generator's construction rules guarantee validity; a
		// failure here is a generator bug, not an input problem.
		panic(fmt.Sprintf("dfggen: generated invalid block: %v", err))
	}
	return blk
}

// Application generates a multi-block program: MinBlocks..MaxBlocks random
// blocks sharing the same shape parameters.
func Application(rng *rand.Rand, p Params) *ir.Application {
	p = p.normalized()
	nb := p.MinBlocks + rng.Intn(p.MaxBlocks-p.MinBlocks+1)
	app := &ir.Application{Name: fmt.Sprintf("genapp%08x", rng.Uint32())}
	for i := 0; i < nb; i++ {
		app.Blocks = append(app.Blocks, Block(rng, p))
	}
	return app
}

// Seeded returns the canonical rng for a seed — the one indirection every
// surface (pinned suite, fuzz targets, soak CLI) shares, so "seed 7"
// means the same block everywhere.
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
