package isegen_test

import (
	"testing"

	isegen "repro"
	"repro/internal/experiments"
	"repro/internal/kernels"
)

// BenchmarkAreaKnapsack measures the area-budget selection extension
// (cmd/isebench -area) on the AES candidate pool.
func BenchmarkAreaKnapsack(b *testing.B) {
	app := kernels.AES()
	model := isegen.DefaultModel()
	cfg := isegen.DefaultConfig()
	cfg.NISE = 8
	res, err := isegen.Generate(app, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	kept := 0
	for i := 0; i < b.N; i++ {
		kept = len(isegen.SelectUnderAreaBudget(app, model, res.Selections, 8000))
	}
	b.ReportMetric(float64(kept), "afus-kept")
}

// BenchmarkHWGenAES measures Verilog AFU generation for every ISE ISEGEN
// selects on AES.
func BenchmarkHWGenAES(b *testing.B) {
	app := kernels.AES()
	model := isegen.DefaultModel()
	res, err := isegen.Generate(app, isegen.DefaultConfig())
	if err != nil || len(res.Selections) == 0 {
		b.Fatalf("generate: %v", err)
	}
	b.ResetTimer()
	bytesOut := 0
	for i := 0; i < b.N; i++ {
		bytesOut = 0
		for _, sel := range res.Selections {
			mod, err := isegen.GenerateAFU(sel.Cut.Block, sel.Cut.Nodes, model, "afu")
			if err != nil {
				b.Fatal(err)
			}
			bytesOut += len(mod.Verilog())
		}
	}
	b.ReportMetric(float64(bytesOut), "verilog-bytes")
}

// BenchmarkAblationRestarts measures the dispersed-restart ablation.
func BenchmarkAblationRestarts(b *testing.B) {
	o := experiments.DefaultOptions()
	for i := 0; i < b.N; i++ {
		experiments.AblationRestarts(o)
	}
}
