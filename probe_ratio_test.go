package isegen_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/latency"
	"repro/internal/obs"
	"repro/internal/search"
)

// maxProbesPerToggle pins the amortized cost of the K-L candidate-gain
// cache on the Figure 4 suite: kl_probes counts digest rebuilds, so the
// probes/toggles ratio is the average number of O(deg+cone) recomputes
// one committed toggle causes. The cache lands at ~3.1 on this suite
// (sequential, default config); before it, every selectBestGain step
// re-probed each unmarked node for ~37. The bound leaves headroom for
// kernel-set drift but fails long before a broken invalidation rule
// degenerates back to the uncached regime.
const maxProbesPerToggle = 5.0

// TestFigure4ProbeToggleRatio is the CI smoke for the probe-digest
// cache's effectiveness. It fails when kl_probes/kl_toggles on the
// Figure 4 kernels regresses above maxProbesPerToggle — catching an
// invalidation rule that starts over-dirtying (correct but slow), which
// no bit-identity test can see.
func TestFigure4ProbeToggleRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 4 suite")
	}
	model := latency.Default()
	rec := obs.NewRecorder(0)
	ctx := obs.WithRecorder(context.Background(), rec)
	r := &search.Runner{Workers: 1, Cache: search.NewCostCache()}
	for _, spec := range kernels.All() {
		cfg := core.DefaultConfig()
		if _, _, err := r.GenerateContext(ctx, spec.App, cfg, search.Merit(model), nil); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
	counters := rec.Counters().Map()
	probes, toggles := counters["kl_probes"], counters["kl_toggles"]
	if toggles == 0 {
		t.Fatal("suite recorded no kl_toggles")
	}
	ratio := float64(probes) / float64(toggles)
	t.Logf("figure4: %d probes / %d toggles = %.2f per toggle (limit %.1f)", probes, toggles, ratio, maxProbesPerToggle)
	if ratio > maxProbesPerToggle {
		t.Fatalf("kl_probes/kl_toggles = %.2f exceeds the pinned %.1f: the gain cache is over-invalidating", ratio, maxProbesPerToggle)
	}
}
