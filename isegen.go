// Package isegen is the public API of the ISEGEN reproduction: automatic
// generation of Instruction Set Extensions (ISEs) from basic-block
// data-flow graphs by Kernighan–Lin-style iterative improvement, after
//
//	P. Biswas, S. Banerjee, N. Dutt, L. Pozzi, P. Ienne.
//	"ISEGEN: Generation of High-Quality Instruction Set Extensions by
//	Iterative Improvement." DATE 2005.
//
// Typical use:
//
//	app := ...                      // build an Application with isegen.NewBuilder
//	cfg := isegen.DefaultConfig()   // I/O (4,2), 4 AFUs
//	res, err := isegen.Generate(app, cfg)
//	// res.Selections: each ISE with all its claimed instances
//	// res.Report:     whole-application speedup, coverage, code size, energy
//
// The package re-exports the pieces a downstream user needs: the IR
// builder and serialization, the latency model, the unified search layer
// over the ISEGEN engine and the exact and genetic baselines, the reuse
// matcher and the cycle-level simulator. See DESIGN.md for the system
// inventory; `go run ./cmd/isebench` regenerates the reproduced results.
package isegen

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/dfgio"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/genetic"
	"repro/internal/graph"
	"repro/internal/hwgen"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/reuse"
	"repro/internal/search"
	"repro/internal/sim"
)

// Core re-exported types. These are aliases, so values flow freely between
// the facade and the experiment harnesses.
type (
	// Application is a set of basic blocks with execution frequencies.
	Application = ir.Application
	// Block is one basic-block data-flow graph.
	Block = ir.Block
	// Builder constructs Blocks programmatically.
	Builder = ir.Builder
	// Value is an SSA-style handle produced by Builder methods.
	Value = ir.Value
	// Op is an instruction opcode.
	Op = ir.Op
	// Model supplies per-opcode software/hardware latency and energy.
	Model = latency.Model
	// Config controls ISE generation (port constraints, AFU budget,
	// pass limit, gain weights, latency model).
	Config = core.Config
	// Weights are the five gain-function control parameters α1..α5.
	Weights = core.Weights
	// Cut is one identified ISE.
	Cut = core.Cut
	// Instance is one occurrence of a cut in some block.
	Instance = reuse.Instance
	// Selection pairs a cut with all its claimed instances.
	Selection = eval.Selection
	// Report aggregates speedup, coverage, code-size and energy metrics.
	Report = eval.Report
	// BitSet is the dense node-set type used throughout.
	BitSet = graph.BitSet

	// SearchEngine is the unified interface over the three
	// identification algorithms (see internal/search).
	SearchEngine = search.Engine
	// SearchLimits bundles port/AFU/resource constraints for an engine.
	SearchLimits = search.Limits
	// SearchStats reports what one engine run did.
	SearchStats = search.Stats
	// Objective is the pluggable goal function of a search.
	Objective = search.Objective
	// ObjectiveParams carries per-objective parameters for registry
	// construction (NewObjective): area gate penalty, latency budget,
	// block-class weights.
	ObjectiveParams = search.ObjectiveParams
	// ObjectiveVector is a cut's score on every objective axis at once
	// (merit maximized, area minimized, energy maximized).
	ObjectiveVector = search.Vector
	// Frontier is the Pareto frontier of a multi-objective run: the
	// non-dominated candidates examined, with the selected ones flagged.
	Frontier = search.Frontier
	// FrontierPoint is one non-dominated candidate on a Frontier.
	FrontierPoint = search.FrontierPoint
	// Runner fans work out across blocks and K-L restarts with
	// deterministic, bit-identical-to-sequential results.
	Runner = search.Runner
	// CostCache is the shared memoized cut-costing cache.
	CostCache = search.CostCache
)

// Re-exported opcodes (see ir.Op for semantics).
const (
	OpConst  = ir.OpConst
	OpAdd    = ir.OpAdd
	OpSub    = ir.OpSub
	OpMul    = ir.OpMul
	OpNeg    = ir.OpNeg
	OpAnd    = ir.OpAnd
	OpOr     = ir.OpOr
	OpXor    = ir.OpXor
	OpNot    = ir.OpNot
	OpShl    = ir.OpShl
	OpShrL   = ir.OpShrL
	OpShrA   = ir.OpShrA
	OpCmpEQ  = ir.OpCmpEQ
	OpCmpNE  = ir.OpCmpNE
	OpCmpLT  = ir.OpCmpLT
	OpCmpLE  = ir.OpCmpLE
	OpCmpGT  = ir.OpCmpGT
	OpCmpGE  = ir.OpCmpGE
	OpSelect = ir.OpSelect
	OpMin    = ir.OpMin
	OpMax    = ir.OpMax
	OpLoad   = ir.OpLoad
	OpStore  = ir.OpStore
)

// NewBuilder returns a Builder for a block with the given name and
// execution frequency.
func NewBuilder(name string, freq float64) *Builder { return ir.NewBuilder(name, freq) }

// NewBitSet returns an empty node set of capacity n.
func NewBitSet(n int) *BitSet { return graph.NewBitSet(n) }

// DefaultModel returns the latency/energy model used by all experiments.
func DefaultModel() *Model { return latency.Default() }

// DefaultConfig returns the paper's main configuration: I/O constraints
// (4,2), 4 AFUs, 5 K-L passes and the tuned gain weights.
func DefaultConfig() Config { return core.DefaultConfig() }

// Result is the outcome of Generate: the selected ISEs with every claimed
// instance, plus the whole-application quality report.
type Result struct {
	// Selections are the identified ISEs with all claimed instances.
	Selections []Selection
	// Report aggregates speedup, coverage, code-size and energy.
	Report *Report
	// Frontier is the Pareto frontier of the drive's candidate pool —
	// non-nil only for multi-objective runs (objective "pareto").
	Frontier *Frontier
}

// Generate runs the full ISEGEN flow on the application: iterative K-L
// bi-partitioning under the AFU budget (with restart trajectories fanned
// out across Config.Workers), reuse-aware candidate scoring, reuse
// matching to claim every isomorphic instance of each identified cut (the
// paper's large-scale reuse), schedulability filtering, and evaluation.
func Generate(app *Application, cfg Config) (*Result, error) {
	return GenerateContext(context.Background(), app, cfg, nil)
}

// GenerateContext is Generate with cancellation and an optional shared
// cut-costing cache (nil allocates a run-private one). A persistent cache
// (NewPersistentCostCache) makes repeated runs over the same application
// skip cut costing entirely — the long-lived-service scenario. The run
// aborts between driver rounds when ctx is cancelled, returning ctx.Err().
func GenerateContext(ctx context.Context, app *Application, cfg Config, cache *CostCache) (*Result, error) {
	return GenerateWithObjectiveContext(ctx, app, cfg, "", ObjectiveParams{}, cache)
}

// GenerateWithObjective runs GenerateWithObjectiveContext under
// context.Background().
func GenerateWithObjective(app *Application, cfg Config, objective string, p ObjectiveParams) (*Result, error) {
	return GenerateWithObjectiveContext(context.Background(), app, cfg, objective, p, nil)
}

// GenerateWithObjectiveContext is the full ISEGEN-with-reuse flow under a
// chosen scoring objective: the greedy drive selects candidates by the
// named objective from the registry (see ObjectiveNames) while reuse
// matching still claims every isomorphic instance of each selected cut.
// The empty name and "reuse" both select the default reuse-aware scoring
// (wired to the shared claimer, so scoring sees claimed state) and are
// exactly equivalent to GenerateContext. Under "pareto" the returned
// Result additionally carries the run's Frontier.
func GenerateWithObjectiveContext(ctx context.Context, app *Application, cfg Config, objective string, p ObjectiveParams, cache *CostCache) (*Result, error) {
	claimer := eval.NewClaimer(app)
	var obj *Objective
	switch objective {
	case "", "reuse":
		// Reuse-aware candidate scoring (the paper's Figure 1
		// principle): a cut is worth its merit times the number of
		// disjoint schedulable instances that can be claimed for it,
		// weighted by block frequency. The scoring claimer must be the
		// claiming one, so scores see previously claimed state.
		obj = search.ReuseAware(app, cfg.Model, claimer)
	default:
		var err error
		if obj, err = search.NewObjective(objective, app, cfg.Model, p); err != nil {
			return nil, err
		}
	}

	var sels []Selection
	r := &search.Runner{Workers: cfg.Workers, Cache: cache}
	_, stats, err := r.GenerateContext(ctx, app, cfg, obj, func(bi int, cut *Cut, excluded []*graph.BitSet) {
		// The seed itself is already excluded by the driver; the
		// claimer finds every other instance among available nodes
		// (and re-admits the seed occurrence), extending excluded. A
		// cut whose every instance would form a dependency cycle with
		// previously claimed instances yields no selection; its nodes
		// stay excluded so the driver moves on.
		sel := claimer.Claim(bi, cut, excluded)
		if len(sel.Instances) > 0 {
			sels = append(sels, sel)
		}
	})
	if err != nil {
		return nil, err
	}

	rep, err := eval.Evaluate(app, cfg.Model, sels)
	if err != nil {
		return nil, err
	}
	return &Result{Selections: sels, Report: rep, Frontier: stats.Frontier}, nil
}

// ClaimAllWithReuse converts cuts identified by any algorithm into
// Selections with the same reuse treatment Generate applies.
func ClaimAllWithReuse(app *Application, cuts []*Cut, blockIdxOf func(*Cut) int) []Selection {
	return eval.ClaimAllWithReuse(app, cuts, blockIdxOf)
}

// GenerateCutsOnly runs ISEGEN without reuse matching: each identified cut
// counts once. This is the configuration used for the Figure 4 comparison,
// where all four algorithms are evaluated identically.
func GenerateCutsOnly(app *Application, cfg Config) ([]*Cut, error) {
	return GenerateCutsOnlyContext(context.Background(), app, cfg, nil)
}

// GenerateCutsOnlyContext is GenerateCutsOnly with cancellation and an
// optional shared cut-costing cache (see GenerateContext).
func GenerateCutsOnlyContext(ctx context.Context, app *Application, cfg Config, cache *CostCache) ([]*Cut, error) {
	cuts, _, err := GenerateCutsOnlyWithObjectiveContext(ctx, app, cfg, "", ObjectiveParams{}, cache)
	return cuts, err
}

// GenerateCutsOnlyWithObjectiveContext is GenerateCutsOnlyContext under a
// chosen scoring objective from the registry (the empty name selects
// "merit", the paper's Figure 4 configuration). The returned Frontier is
// non-nil only for multi-objective runs (objective "pareto").
func GenerateCutsOnlyWithObjectiveContext(ctx context.Context, app *Application, cfg Config, objective string, p ObjectiveParams, cache *CostCache) ([]*Cut, *Frontier, error) {
	obj := search.Merit(cfg.Model)
	if objective != "" {
		var err error
		if obj, err = search.NewObjective(objective, app, cfg.Model, p); err != nil {
			return nil, nil, err
		}
	}
	r := &search.Runner{Workers: cfg.Workers, Cache: cache}
	cuts, stats, err := r.GenerateContext(ctx, app, cfg, obj, nil)
	if err != nil {
		return nil, nil, err
	}
	return cuts, stats.Frontier, nil
}

// Evaluate computes the quality report of an arbitrary selection set.
func Evaluate(app *Application, model *Model, sels []Selection) (*Report, error) {
	return eval.Evaluate(app, model, sels)
}

// EvaluateCuts computes the quality report counting each cut once.
func EvaluateCuts(app *Application, model *Model, cuts []*Cut) (*Report, error) {
	return eval.SpeedupOfCuts(app, model, cuts)
}

// Simulate runs the cycle-level core+AFU model over the application with
// the given selections, verifying functional equivalence and returning
// measured (rather than estimated) speedup.
func Simulate(app *Application, model *Model, sels []Selection) (*sim.AppResult, error) {
	instances := map[int][]*graph.BitSet{}
	for _, sel := range sels {
		for _, inst := range sel.Instances {
			instances[inst.BlockIdx] = append(instances[inst.BlockIdx], inst.Nodes)
		}
	}
	return sim.RunApp(app, model, instances)
}

// SimResult is the simulator's application-level outcome.
type SimResult = sim.AppResult

// FindInstances exposes the reuse matcher: all occurrences of the cut
// (identified in app.Blocks[patIdx]) across the application.
func FindInstances(app *Application, patIdx int, cut *BitSet, perBlockLimit int) []Instance {
	return reuse.FindAppInstances(app, patIdx, cut, nil, perBlockLimit)
}

// Baseline algorithms (see DESIGN.md): the exact enumeration of Atasu et
// al. (DAC'03) and the genetic formulation of Biswas et al. (DAC'04).
// All drivers route through the unified internal/search engine layer.

// NewSearchEngine returns the named engine ("isegen", "exact",
// "iterative", "genetic" or "racing") wired to the shared cost cache (may
// be nil).
func NewSearchEngine(name string, cache *CostCache) (SearchEngine, error) {
	return search.New(name, cache)
}

// RacingEngine is the anytime meta-engine: K-L and the genetic baseline
// race the exact joint search on the same block, each heuristic's merit
// seeding the exact search's best-bound, so the proven-optimal answer
// (bit-identical to the exact engine alone) arrives sooner. OnEvent
// observes each racer's publication;
// SearchLimits.Deadline turns it into a best-answer-by-then search. See
// DESIGN.md, "Racing anytime search".
type RacingEngine = search.Racing

// RaceEvent is one racing publication: a complete anytime or optimal
// answer (see search.RaceEvent).
type RaceEvent = search.RaceEvent

// NewCostCache returns an empty shared cut-costing cache.
func NewCostCache() *CostCache { return search.NewCostCache() }

// CostCacheStore is a disk-backed persistence layer for cut costings:
// one file per (block hash, model fingerprint) with size-bounded LRU
// eviction, so repeated sweeps over the same application skip cut costing
// even across process restarts.
type CostCacheStore = search.Store

// NewCostCacheStore opens (creating if needed) a persistent cache
// directory. maxBytes bounds the total stored size (0 selects the default
// bound, negative disables eviction).
func NewCostCacheStore(dir string, maxBytes int64) (*CostCacheStore, error) {
	return search.NewStore(dir, maxBytes)
}

// NewPersistentCostCache returns a cut-costing cache keyed by canonical
// block content (BlockHash) rather than block identity: structurally
// identical blocks share entries across parses, and entries are loaded
// from / flushed to the store (nil = memory-only). Call Flush to persist.
func NewPersistentCostCache(store *CostCacheStore) *CostCache {
	return search.NewPersistentCostCache(store)
}

// BlockHash returns the canonical content hash of a block's structure —
// stable across parses, renames and re-profiling; see dfgio.BlockHash.
func BlockHash(b *Block) string { return dfgio.BlockHash(b) }

// SearchEngineNames lists the engine registry names.
func SearchEngineNames() []string { return search.Names() }

// DefaultNodeLimit returns the paper's block-size limit for the named
// engine (25 for "exact" and "racing", 100 for "iterative", 0 = unlimited
// otherwise).
func DefaultNodeLimit(name string) int { return search.DefaultNodeLimit(name) }

// DefaultSearchBudget is the standard exact-search node budget shared by
// the CLI, the serving layer and the experiment harnesses.
const DefaultSearchBudget = search.DefaultBudget

// MeritObjective is the paper's objective: highest-merit candidate wins.
func MeritObjective(model *Model) *Objective { return search.Merit(model) }

// ParetoObjective is the multi-objective selector: dominance over
// (merit, area, energy) vectors with a deterministic tie-break; the run
// accumulates a Frontier (see search.Pareto).
func ParetoObjective(model *Model) *Objective { return search.Pareto(model) }

// ParetoBoundedObjective is ParetoObjective with a frontier size bound:
// at most maxFrontier points are retained, evicting the lowest-ranked one
// deterministically (see search.ParetoBounded).
func ParetoBoundedObjective(model *Model, maxFrontier int) *Objective {
	return search.ParetoBounded(model, maxFrontier)
}

// AreaWeightedObjective discounts merit by gatePenalty per NAND2 gate of
// estimated AFU area.
func AreaWeightedObjective(model *Model, gatePenalty float64) *Objective {
	return search.AreaWeighted(model, gatePenalty)
}

// EnergyWeightedObjective scores candidates by frequency-weighted
// per-execution energy saving (application-scoped; Runner.Generate only).
func EnergyWeightedObjective(app *Application, model *Model) *Objective {
	return search.EnergyWeighted(app, model)
}

// LatencyBudgetedObjective restricts selection to cuts whose AFU occupies
// at most budget core cycles, picking maximum merit among those.
func LatencyBudgetedObjective(model *Model, budget int) *Objective {
	return search.LatencyBudgeted(model, budget)
}

// ClassWeightedObjective weights merit by the class of a candidate's home
// block (application-scoped). classOf nil selects BlockClassOf; classes
// absent from weights default to 1.
func ClassWeightedObjective(app *Application, model *Model, classOf func(*Block) string, weights map[string]float64) *Objective {
	return search.ClassWeighted(app, model, classOf, weights)
}

// BlockClassOf is the default block classifier of the "class" objective:
// "memory" for blocks containing loads or stores, "compute" otherwise.
func BlockClassOf(blk *Block) string { return search.BlockClass(blk) }

// NewObjective constructs an objective by registry name (see
// ObjectiveNames), mirroring NewSearchEngine. app is required by the
// application-scoped objectives ("reuse", "energy", "class").
func NewObjective(name string, app *Application, model *Model, p ObjectiveParams) (*Objective, error) {
	return search.NewObjective(name, app, model, p)
}

// ObjectiveNames lists the objective registry names in sorted order.
func ObjectiveNames() []string { return search.ObjectiveNames() }

// CutObjectiveVector scores one cut on every objective axis (merit, area,
// energy) under the model — the per-cut vector the NDJSON result stream
// carries for explicitly chosen objectives.
func CutObjectiveVector(model *Model, cut *Cut) ObjectiveVector {
	return search.CutVector(model, cut)
}

// DefaultGatePenalty is the "area" objective's default merit discount per
// NAND2-equivalent gate.
const DefaultGatePenalty = search.DefaultGatePenalty

// ExactOptions configures the exact baselines. Setting Workers > 1 fans
// the branch-and-bound out inside the block on a shared best-bound with
// bit-identical results (see DESIGN.md, "Determinism contract").
// SeedBound and Bound pre-load that best-bound with an externally known
// feasible merit (the racing engine's heuristic answers), pruning the
// search without changing its result (see DESIGN.md, "Seeded-bound
// soundness").
type ExactOptions = exact.Options

// ExactBound is a raisable shared best-bound, for publishing improving
// feasible merits into a running exact search (see ExactOptions.Bound).
type ExactBound = exact.Bound

// NewExactBound returns a fresh bound at 0 (no pruning).
func NewExactBound() *ExactBound { return exact.NewBound() }

// ExactSingleCut finds the optimal single feasible cut of a block.
func ExactSingleCut(blk *Block, opt ExactOptions, excluded *BitSet) (*Cut, error) {
	return exact.SingleCut(blk, opt, excluded)
}

// ExactSingleCutContext is ExactSingleCut with in-block cancellation: the
// branch-and-bound polls ctx every few thousand explored nodes and aborts
// mid-search with ctx.Err().
func ExactSingleCutContext(ctx context.Context, blk *Block, opt ExactOptions, excluded *BitSet) (*Cut, error) {
	return exact.SingleCutContext(ctx, blk, opt, excluded)
}

// ExactIterative repeatedly finds the optimal single cut (the paper's
// "Iterative" baseline).
func ExactIterative(blk *Block, opt ExactOptions, nise int) ([]*Cut, error) {
	return ExactIterativeContext(context.Background(), blk, opt, nise)
}

// ExactIterativeContext is ExactIterative with in-block cancellation.
// Every ExactOptions field is honored (Iterative rejects bound seeding;
// see ExactOptions.SeedBound).
func ExactIterativeContext(ctx context.Context, blk *Block, opt ExactOptions, nise int) ([]*Cut, error) {
	return exact.IterativeContext(ctx, blk, opt, nise)
}

// ExactMultiCut finds the jointly optimal assignment into nise cuts (the
// paper's "Exact" baseline; tiny blocks only).
func ExactMultiCut(blk *Block, opt ExactOptions, nise int) ([]*Cut, error) {
	return ExactMultiCutContext(context.Background(), blk, opt, nise)
}

// ExactMultiCutContext is ExactMultiCut with in-block cancellation. Every
// ExactOptions field is honored, including the anytime-seeding fields
// (SeedBound, Bound, Explored) the racing engine uses.
func ExactMultiCutContext(ctx context.Context, blk *Block, opt ExactOptions, nise int) ([]*Cut, error) {
	return exact.MultiCutContext(ctx, blk, opt, nise)
}

// GeneticOptions configures the genetic baseline.
type GeneticOptions = genetic.Options

// GeneticIterative finds up to nise cuts by repeated evolution.
func GeneticIterative(blk *Block, opt GeneticOptions, nise int) ([]*Cut, error) {
	eng := &search.Genetic{Seed: opt.Seed, Opt: &opt}
	cuts, _, err := eng.Run(blk, search.Merit(opt.Model), &SearchLimits{
		MaxIn: opt.MaxIn, MaxOut: opt.MaxOut, NISE: nise,
	})
	return cuts, err
}

// Hardware generation and area-constrained selection (extensions; see
// DESIGN.md).

// AFUModule is a generated combinational AFU datapath.
type AFUModule = hwgen.Module

// GenerateAFU builds the Verilog datapath module for a cut.
func GenerateAFU(blk *Block, cut *BitSet, model *Model, name string) (*AFUModule, error) {
	return hwgen.Generate(blk, cut, model, name)
}

// AFUArea returns a cut's datapath area in NAND2-equivalent gates.
func AFUArea(blk *Block, model *Model, cut *BitSet) float64 {
	return eval.AFUArea(blk, model, cut)
}

// SelectUnderAreaBudget picks the selection subset maximizing savings
// under a total AFU area budget (0 = unlimited).
func SelectUnderAreaBudget(app *Application, model *Model, sels []Selection, budget float64) []Selection {
	return eval.SelectUnderAreaBudget(app, model, sels, budget)
}

// TotalAFUArea sums the AFU areas of the selections.
func TotalAFUArea(model *Model, sels []Selection) float64 {
	return eval.TotalAFUArea(model, sels)
}

// Serialization.

// ParseApplication reads a multi-block .dfg stream.
func ParseApplication(name string, r io.Reader) (*Application, error) {
	return dfgio.ParseApplication(name, r)
}

// ParseBlock reads a single .dfg block.
func ParseBlock(r io.Reader) (*Block, error) { return dfgio.Parse(r) }

// WriteBlock serializes one block in .dfg form.
func WriteBlock(w io.Writer, b *Block) error { return dfgio.Write(w, b) }

// WriteApplication serializes all blocks of an application.
func WriteApplication(w io.Writer, app *Application) error {
	return dfgio.WriteApplication(w, app)
}

// WriteDOT renders a block (with optional highlighted cuts) as Graphviz.
func WriteDOT(w io.Writer, b *Block, cuts []*BitSet) error {
	return dfgio.WriteDOT(w, b, cuts)
}
