// Package isegen is the public API of the ISEGEN reproduction: automatic
// generation of Instruction Set Extensions (ISEs) from basic-block
// data-flow graphs by Kernighan–Lin-style iterative improvement, after
//
//	P. Biswas, S. Banerjee, N. Dutt, L. Pozzi, P. Ienne.
//	"ISEGEN: Generation of High-Quality Instruction Set Extensions by
//	Iterative Improvement." DATE 2005.
//
// Typical use:
//
//	app := ...                      // build an Application with isegen.NewBuilder
//	cfg := isegen.DefaultConfig()   // I/O (4,2), 4 AFUs
//	res, err := isegen.Generate(app, cfg)
//	// res.Selections: each ISE with all its claimed instances
//	// res.Report:     whole-application speedup, coverage, code size, energy
//
// The package re-exports the pieces a downstream user needs: the IR
// builder and serialization, the latency model, the unified search layer
// over the ISEGEN engine and the exact and genetic baselines, the reuse
// matcher and the cycle-level simulator. See DESIGN.md for the system
// inventory; `go run ./cmd/isebench` regenerates the reproduced results.
package isegen

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/dfgio"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/genetic"
	"repro/internal/graph"
	"repro/internal/hwgen"
	"repro/internal/ir"
	"repro/internal/latency"
	"repro/internal/reuse"
	"repro/internal/search"
	"repro/internal/sim"
)

// Core re-exported types. These are aliases, so values flow freely between
// the facade and the experiment harnesses.
type (
	// Application is a set of basic blocks with execution frequencies.
	Application = ir.Application
	// Block is one basic-block data-flow graph.
	Block = ir.Block
	// Builder constructs Blocks programmatically.
	Builder = ir.Builder
	// Value is an SSA-style handle produced by Builder methods.
	Value = ir.Value
	// Op is an instruction opcode.
	Op = ir.Op
	// Model supplies per-opcode software/hardware latency and energy.
	Model = latency.Model
	// Config controls ISE generation (port constraints, AFU budget,
	// pass limit, gain weights, latency model).
	Config = core.Config
	// Weights are the five gain-function control parameters α1..α5.
	Weights = core.Weights
	// Cut is one identified ISE.
	Cut = core.Cut
	// Instance is one occurrence of a cut in some block.
	Instance = reuse.Instance
	// Selection pairs a cut with all its claimed instances.
	Selection = eval.Selection
	// Report aggregates speedup, coverage, code-size and energy metrics.
	Report = eval.Report
	// BitSet is the dense node-set type used throughout.
	BitSet = graph.BitSet

	// SearchEngine is the unified interface over the three
	// identification algorithms (see internal/search).
	SearchEngine = search.Engine
	// SearchLimits bundles port/AFU/resource constraints for an engine.
	SearchLimits = search.Limits
	// SearchStats reports what one engine run did.
	SearchStats = search.Stats
	// Objective is the pluggable goal function of a search.
	Objective = search.Objective
	// Runner fans work out across blocks and K-L restarts with
	// deterministic, bit-identical-to-sequential results.
	Runner = search.Runner
	// CostCache is the shared memoized cut-costing cache.
	CostCache = search.CostCache
)

// Re-exported opcodes (see ir.Op for semantics).
const (
	OpConst  = ir.OpConst
	OpAdd    = ir.OpAdd
	OpSub    = ir.OpSub
	OpMul    = ir.OpMul
	OpNeg    = ir.OpNeg
	OpAnd    = ir.OpAnd
	OpOr     = ir.OpOr
	OpXor    = ir.OpXor
	OpNot    = ir.OpNot
	OpShl    = ir.OpShl
	OpShrL   = ir.OpShrL
	OpShrA   = ir.OpShrA
	OpCmpEQ  = ir.OpCmpEQ
	OpCmpNE  = ir.OpCmpNE
	OpCmpLT  = ir.OpCmpLT
	OpCmpLE  = ir.OpCmpLE
	OpCmpGT  = ir.OpCmpGT
	OpCmpGE  = ir.OpCmpGE
	OpSelect = ir.OpSelect
	OpMin    = ir.OpMin
	OpMax    = ir.OpMax
	OpLoad   = ir.OpLoad
	OpStore  = ir.OpStore
)

// NewBuilder returns a Builder for a block with the given name and
// execution frequency.
func NewBuilder(name string, freq float64) *Builder { return ir.NewBuilder(name, freq) }

// NewBitSet returns an empty node set of capacity n.
func NewBitSet(n int) *BitSet { return graph.NewBitSet(n) }

// DefaultModel returns the latency/energy model used by all experiments.
func DefaultModel() *Model { return latency.Default() }

// DefaultConfig returns the paper's main configuration: I/O constraints
// (4,2), 4 AFUs, 5 K-L passes and the tuned gain weights.
func DefaultConfig() Config { return core.DefaultConfig() }

// Result is the outcome of Generate: the selected ISEs with every claimed
// instance, plus the whole-application quality report.
type Result struct {
	Selections []Selection
	Report     *Report
}

// Generate runs the full ISEGEN flow on the application: iterative K-L
// bi-partitioning under the AFU budget (with restart trajectories fanned
// out across Config.Workers), reuse-aware candidate scoring, reuse
// matching to claim every isomorphic instance of each identified cut (the
// paper's large-scale reuse), schedulability filtering, and evaluation.
func Generate(app *Application, cfg Config) (*Result, error) {
	return GenerateContext(context.Background(), app, cfg, nil)
}

// GenerateContext is Generate with cancellation and an optional shared
// cut-costing cache (nil allocates a run-private one). A persistent cache
// (NewPersistentCostCache) makes repeated runs over the same application
// skip cut costing entirely — the long-lived-service scenario. The run
// aborts between driver rounds when ctx is cancelled, returning ctx.Err().
func GenerateContext(ctx context.Context, app *Application, cfg Config, cache *CostCache) (*Result, error) {
	var sels []Selection
	claimer := eval.NewClaimer(app)
	r := &search.Runner{Workers: cfg.Workers, Cache: cache}
	// Reuse-aware candidate scoring (the paper's Figure 1 principle):
	// a cut is worth its merit times the number of disjoint schedulable
	// instances that can be claimed for it, weighted by block frequency.
	obj := search.ReuseAware(app, cfg.Model, claimer)
	_, _, err := r.GenerateContext(ctx, app, cfg, obj, func(bi int, cut *Cut, excluded []*graph.BitSet) {
		// The seed itself is already excluded by the driver; the
		// claimer finds every other instance among available nodes
		// (and re-admits the seed occurrence), extending excluded. A
		// cut whose every instance would form a dependency cycle with
		// previously claimed instances yields no selection; its nodes
		// stay excluded so the driver moves on.
		sel := claimer.Claim(bi, cut, excluded)
		if len(sel.Instances) > 0 {
			sels = append(sels, sel)
		}
	})
	if err != nil {
		return nil, err
	}

	rep, err := eval.Evaluate(app, cfg.Model, sels)
	if err != nil {
		return nil, err
	}
	return &Result{Selections: sels, Report: rep}, nil
}

// ClaimAllWithReuse converts cuts identified by any algorithm into
// Selections with the same reuse treatment Generate applies.
func ClaimAllWithReuse(app *Application, cuts []*Cut, blockIdxOf func(*Cut) int) []Selection {
	return eval.ClaimAllWithReuse(app, cuts, blockIdxOf)
}

// GenerateCutsOnly runs ISEGEN without reuse matching: each identified cut
// counts once. This is the configuration used for the Figure 4 comparison,
// where all four algorithms are evaluated identically.
func GenerateCutsOnly(app *Application, cfg Config) ([]*Cut, error) {
	return GenerateCutsOnlyContext(context.Background(), app, cfg, nil)
}

// GenerateCutsOnlyContext is GenerateCutsOnly with cancellation and an
// optional shared cut-costing cache (see GenerateContext).
func GenerateCutsOnlyContext(ctx context.Context, app *Application, cfg Config, cache *CostCache) ([]*Cut, error) {
	r := &search.Runner{Workers: cfg.Workers, Cache: cache}
	cuts, _, err := r.GenerateContext(ctx, app, cfg, search.Merit(cfg.Model), nil)
	if err != nil {
		return nil, err
	}
	return cuts, nil
}

// Evaluate computes the quality report of an arbitrary selection set.
func Evaluate(app *Application, model *Model, sels []Selection) (*Report, error) {
	return eval.Evaluate(app, model, sels)
}

// EvaluateCuts computes the quality report counting each cut once.
func EvaluateCuts(app *Application, model *Model, cuts []*Cut) (*Report, error) {
	return eval.SpeedupOfCuts(app, model, cuts)
}

// Simulate runs the cycle-level core+AFU model over the application with
// the given selections, verifying functional equivalence and returning
// measured (rather than estimated) speedup.
func Simulate(app *Application, model *Model, sels []Selection) (*sim.AppResult, error) {
	instances := map[int][]*graph.BitSet{}
	for _, sel := range sels {
		for _, inst := range sel.Instances {
			instances[inst.BlockIdx] = append(instances[inst.BlockIdx], inst.Nodes)
		}
	}
	return sim.RunApp(app, model, instances)
}

// SimResult is the simulator's application-level outcome.
type SimResult = sim.AppResult

// FindInstances exposes the reuse matcher: all occurrences of the cut
// (identified in app.Blocks[patIdx]) across the application.
func FindInstances(app *Application, patIdx int, cut *BitSet, perBlockLimit int) []Instance {
	return reuse.FindAppInstances(app, patIdx, cut, nil, perBlockLimit)
}

// Baseline algorithms (see DESIGN.md): the exact enumeration of Atasu et
// al. (DAC'03) and the genetic formulation of Biswas et al. (DAC'04).
// All drivers route through the unified internal/search engine layer.

// NewSearchEngine returns the named engine ("isegen", "exact",
// "iterative" or "genetic") wired to the shared cost cache (may be nil).
func NewSearchEngine(name string, cache *CostCache) (SearchEngine, error) {
	return search.New(name, cache)
}

// NewCostCache returns an empty shared cut-costing cache.
func NewCostCache() *CostCache { return search.NewCostCache() }

// CostCacheStore is a disk-backed persistence layer for cut costings:
// one file per (block hash, model fingerprint) with size-bounded LRU
// eviction, so repeated sweeps over the same application skip cut costing
// even across process restarts.
type CostCacheStore = search.Store

// NewCostCacheStore opens (creating if needed) a persistent cache
// directory. maxBytes bounds the total stored size (0 selects the default
// bound, negative disables eviction).
func NewCostCacheStore(dir string, maxBytes int64) (*CostCacheStore, error) {
	return search.NewStore(dir, maxBytes)
}

// NewPersistentCostCache returns a cut-costing cache keyed by canonical
// block content (BlockHash) rather than block identity: structurally
// identical blocks share entries across parses, and entries are loaded
// from / flushed to the store (nil = memory-only). Call Flush to persist.
func NewPersistentCostCache(store *CostCacheStore) *CostCache {
	return search.NewPersistentCostCache(store)
}

// BlockHash returns the canonical content hash of a block's structure —
// stable across parses, renames and re-profiling; see dfgio.BlockHash.
func BlockHash(b *Block) string { return dfgio.BlockHash(b) }

// SearchEngineNames lists the engine registry names.
func SearchEngineNames() []string { return search.Names() }

// DefaultNodeLimit returns the paper's block-size limit for the named
// engine (25 for "exact", 100 for "iterative", 0 = unlimited otherwise).
func DefaultNodeLimit(name string) int { return search.DefaultNodeLimit(name) }

// DefaultSearchBudget is the standard exact-search node budget shared by
// the CLI, the serving layer and the experiment harnesses.
const DefaultSearchBudget = search.DefaultBudget

// MeritObjective is the paper's objective: highest-merit candidate wins.
func MeritObjective(model *Model) *Objective { return search.Merit(model) }

// ExactOptions configures the exact baselines.
type ExactOptions = exact.Options

// ExactSingleCut finds the optimal single feasible cut of a block.
func ExactSingleCut(blk *Block, opt ExactOptions, excluded *BitSet) (*Cut, error) {
	return exact.SingleCut(blk, opt, excluded)
}

// ExactIterative repeatedly finds the optimal single cut (the paper's
// "Iterative" baseline).
func ExactIterative(blk *Block, opt ExactOptions, nise int) ([]*Cut, error) {
	eng := &search.ExactIterative{Metrics: opt.Metrics}
	cuts, _, err := eng.Run(blk, search.Merit(opt.Model), exactLimits(opt, nise))
	return cuts, err
}

// ExactMultiCut finds the jointly optimal assignment into nise cuts (the
// paper's "Exact" baseline; tiny blocks only).
func ExactMultiCut(blk *Block, opt ExactOptions, nise int) ([]*Cut, error) {
	eng := &search.ExactJoint{Metrics: opt.Metrics}
	cuts, _, err := eng.Run(blk, search.Merit(opt.Model), exactLimits(opt, nise))
	return cuts, err
}

func exactLimits(opt ExactOptions, nise int) *SearchLimits {
	return &SearchLimits{
		MaxIn: opt.MaxIn, MaxOut: opt.MaxOut, NISE: nise,
		NodeLimit: opt.NodeLimit, Budget: opt.Budget,
	}
}

// GeneticOptions configures the genetic baseline.
type GeneticOptions = genetic.Options

// GeneticIterative finds up to nise cuts by repeated evolution.
func GeneticIterative(blk *Block, opt GeneticOptions, nise int) ([]*Cut, error) {
	eng := &search.Genetic{Seed: opt.Seed, Opt: &opt}
	cuts, _, err := eng.Run(blk, search.Merit(opt.Model), &SearchLimits{
		MaxIn: opt.MaxIn, MaxOut: opt.MaxOut, NISE: nise,
	})
	return cuts, err
}

// Hardware generation and area-constrained selection (extensions; see
// DESIGN.md).

// AFUModule is a generated combinational AFU datapath.
type AFUModule = hwgen.Module

// GenerateAFU builds the Verilog datapath module for a cut.
func GenerateAFU(blk *Block, cut *BitSet, model *Model, name string) (*AFUModule, error) {
	return hwgen.Generate(blk, cut, model, name)
}

// AFUArea returns a cut's datapath area in NAND2-equivalent gates.
func AFUArea(blk *Block, model *Model, cut *BitSet) float64 {
	return eval.AFUArea(blk, model, cut)
}

// SelectUnderAreaBudget picks the selection subset maximizing savings
// under a total AFU area budget (0 = unlimited).
func SelectUnderAreaBudget(app *Application, model *Model, sels []Selection, budget float64) []Selection {
	return eval.SelectUnderAreaBudget(app, model, sels, budget)
}

// TotalAFUArea sums the AFU areas of the selections.
func TotalAFUArea(model *Model, sels []Selection) float64 {
	return eval.TotalAFUArea(model, sels)
}

// Serialization.

// ParseApplication reads a multi-block .dfg stream.
func ParseApplication(name string, r io.Reader) (*Application, error) {
	return dfgio.ParseApplication(name, r)
}

// ParseBlock reads a single .dfg block.
func ParseBlock(r io.Reader) (*Block, error) { return dfgio.Parse(r) }

// WriteBlock serializes one block in .dfg form.
func WriteBlock(w io.Writer, b *Block) error { return dfgio.Write(w, b) }

// WriteApplication serializes all blocks of an application.
func WriteApplication(w io.Writer, app *Application) error {
	return dfgio.WriteApplication(w, app)
}

// WriteDOT renders a block (with optional highlighted cuts) as Graphviz.
func WriteDOT(w io.Writer, b *Block, cuts []*BitSet) error {
	return dfgio.WriteDOT(w, b, cuts)
}
