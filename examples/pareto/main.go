// Pareto walkthrough: run the ISEGEN drive on the MediaBench ADPCM
// decoder twice — once under the paper's merit-only objective, once under
// multi-objective (Pareto) selection over (merit, area, energy) — and
// compare what each spends in silicon and energy for its speedup.
//
// Merit-only selection takes the biggest cycle saver every round no
// matter its cost; Pareto selection keeps the whole non-dominated
// frontier in view and breaks ties toward cheaper, more efficient AFUs,
// surfacing the trade-offs merit-only scoring never shows.
package main

import (
	"fmt"
	"log"

	isegen "repro"
	"repro/internal/kernels"
)

func main() {
	model := isegen.DefaultModel()
	cfg := isegen.DefaultConfig() // I/O (4,2), 4 AFUs

	report := func(label, objective string) *isegen.Result {
		app := kernels.ADPCMDecoder()
		res, err := isegen.GenerateWithObjective(app, cfg, objective, isegen.ObjectiveParams{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", label)
		for i, sel := range res.Selections {
			v := isegen.CutObjectiveVector(model, sel.Cut)
			fmt.Printf("  ISE %d: %2d nodes, %s, %d instances\n",
				i+1, sel.Cut.Size(), v, len(sel.Instances))
		}
		fmt.Printf("  speedup %.3fx, coverage %.1f%%, total AFU area %.0f gates\n\n",
			res.Report.Speedup, 100*res.Report.Coverage,
			isegen.TotalAFUArea(model, res.Selections))
		return res
	}

	report("merit-only (the paper's objective)", "merit")
	res := report("pareto (dominance over merit/area/energy)", "pareto")

	// The frontier is what merit-only scoring never shows: every
	// non-dominated trade-off the search passed through.
	fmt.Printf("pareto frontier: %d non-dominated candidates (* = selected)\n", res.Frontier.Len())
	for _, pt := range res.Frontier.Points() {
		mark := " "
		if pt.Selected {
			mark = "*"
		}
		fmt.Printf(" %s block %d, %2d nodes: %s\n", mark, pt.Block, pt.Cut.Size(), pt.Vector)
	}
}
