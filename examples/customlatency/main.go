// Custom latency model and textual DFGs: parse a hand-written .dfg
// application, build a latency model for a core with a fast hardware
// multiplier (making multiply-centred ISEs much less attractive), and
// compare the ISEs ISEGEN picks under the default and custom models.
package main

import (
	"fmt"
	"log"
	"strings"

	isegen "repro"
)

// A small filter kernel written in the .dfg text format: two taps of an
// FIR filter followed by a saturating shift.
const src = `
dfg fir2
freq 500
inputs 5
# y = sat((x0*c0 + x1*c1) >> 8) ; acc' = acc + y
0 mul i0 i2
1 mul i1 i3
2 add n0 n1
3 shra n2 m8
4 min n3 m32767
5 max n4 m-32768
6 add i4 n5
7 xor n5 n6 !out
8 or n6 n7 !out

dfg glue
freq 10
inputs 2
0 add i0 i1
1 load n0
2 store i0 n1
3 sub i1 m1 !out
`

func main() {
	app, err := isegen.ParseApplication("fir", strings.NewReader(src))
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, model *isegen.Model) {
		cfg := isegen.DefaultConfig()
		cfg.Model = model
		res, err := isegen.Generate(app, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", name)
		for _, sel := range res.Selections {
			fmt.Printf("  cut %v io (%d,%d) merit %.0f\n",
				sel.Cut.Nodes, sel.Cut.NumIn, sel.Cut.NumOut, sel.Cut.Merit())
		}
		fmt.Printf("  speedup %.3f\n", res.Report.Speedup)
	}

	run("default model (3-cycle multiply)", isegen.DefaultModel())

	// A core with a single-cycle multiplier: software multiplies are
	// cheap, so ISEs must earn their keep by chaining.
	fast := isegen.DefaultModel()
	fast.SW[isegen.OpMul] = 1
	run("fast-multiplier model (1-cycle multiply)", fast)
}
