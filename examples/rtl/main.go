// RTL generation: identify the best ISE in the AES block under tight
// (2,1) port constraints — the 5-node GF(2^8) xtime computation — and emit
// the synthesizable Verilog datapath of its AFU, together with area and
// delay figures and an equivalence check between the generated netlist
// and the IR interpreter.
package main

import (
	"fmt"
	"log"

	isegen "repro"
	"repro/internal/kernels"
)

func main() {
	app := kernels.AES()
	model := isegen.DefaultModel()

	cfg := isegen.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE = 2, 1, 1
	res, err := isegen.Generate(app, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Selections) == 0 {
		log.Fatal("no ISE found")
	}
	sel := res.Selections[0]
	blk := sel.Cut.Block

	mod, err := isegen.GenerateAFU(blk, sel.Cut.Nodes, model, "aes_xtime_afu")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("// ISE: %d nodes, %d instances in the application\n", sel.Cut.Size(), len(sel.Instances))
	fmt.Printf("// area %.0f NAND2-eq gates, delay %.2f MAC delays (%d core cycles)\n",
		mod.Area(), mod.Delay(), sel.Cut.HWCyclesInt())
	fmt.Print(mod.Verilog())

	// Equivalence check against the IR interpreter on a few vectors.
	for _, b := range []int32{0x00, 0x57, 0x80, 0xae, 0xff} {
		inputs := make([]int32, blk.NumInputs)
		// Feed the AFU directly: its single input port carries the
		// byte entering the xtime block.
		got, err := mod.Eval(mod.InputsFor(func(int) int32 { return b }))
		if err != nil {
			log.Fatal(err)
		}
		want := (b << 1) & 0xff
		if b&0x80 != 0 {
			want ^= 0x1b
		}
		for name, v := range got {
			if v != want {
				log.Fatalf("xtime(%#x): AFU %s = %#x, want %#x", b, name, v, want)
			}
		}
		_ = inputs
	}
	fmt.Println("// equivalence check passed: AFU netlist == GF(2^8) xtime reference")
}
