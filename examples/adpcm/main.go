// ADPCM end-to-end: run ISEGEN on the MediaBench ADPCM decoder benchmark,
// then *execute* the accelerated application on the cycle-level core+AFU
// simulator and compare measured cycles against the analytic estimate.
//
// This is the paper's future-work item ("deployment of ISEs in a real
// system") realized on the simulator substrate: the accelerated schedule
// must compute bit-identical results and its measured speedup must match
// the estimate.
package main

import (
	"fmt"
	"log"

	isegen "repro"
	"repro/internal/kernels"
)

func main() {
	app := kernels.ADPCMDecoder()
	model := isegen.DefaultModel()

	cfg := isegen.DefaultConfig()
	res, err := isegen.Generate(app, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ADPCM decoder: %d-node critical block, %d ISEs identified\n",
		app.MaxBlockSize(), len(res.Selections))
	for i, sel := range res.Selections {
		fmt.Printf("  ISE %d: %2d nodes, io (%d,%d), merit %2.0f, %d instances\n",
			i+1, sel.Cut.Size(), sel.Cut.NumIn, sel.Cut.NumOut, sel.Cut.Merit(), len(sel.Instances))
	}
	fmt.Printf("estimated speedup: %.3fx\n", res.Report.Speedup)

	// Replay on the cycle-level simulator: functional equivalence of
	// every block is checked internally (the run fails if the AFU
	// results diverge from plain software execution).
	simRes, err := isegen.Simulate(app, model, res.Selections)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated speedup: %.3fx (%.0f -> %.0f cycles)\n",
		simRes.Speedup, simRes.BaselineCycles, simRes.AccelCycles)
	fmt.Println("functional check: accelerated execution matches software bit-for-bit")
}
