// AES regularity study (Figures 6 and 7 in miniature): sweep the I/O port
// constraints on the 696-node AES block and watch how ISEGEN trades cut
// size against reusability — tight constraints yield small cuts with many
// isomorphic instances, relaxed constraints yield large cuts with few.
//
// This is the paper's headline AES result: exploiting the regular
// structure of the DFG the way an expert designer would, by implementing
// one AFU datapath and invoking it at every occurrence of the repeated
// computation.
package main

import (
	"fmt"
	"log"

	isegen "repro"
	"repro/internal/kernels"
)

func main() {
	fmt.Println("AES(696): ISE identification under varying I/O constraints, 4 AFUs")
	fmt.Printf("%-8s %8s  %s\n", "I/O", "speedup", "cuts (size x instances)")
	for _, io := range [][2]int{{2, 1}, {3, 1}, {4, 1}, {4, 2}, {6, 3}, {8, 4}} {
		app := kernels.AES()
		cfg := isegen.DefaultConfig()
		cfg.MaxIn, cfg.MaxOut = io[0], io[1]
		res, err := isegen.Generate(app, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%d,%d)   %8.3f ", io[0], io[1], res.Report.Speedup)
		for _, sel := range res.Selections {
			fmt.Printf(" %dx%d", sel.Cut.Size(), len(sel.Instances))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Reading the table: under (2,1) the winning cut is the 5-node GF(2^8)")
	fmt.Println("xtime block with 48 instances across the three unrolled rounds; under")
	fmt.Println("(8,4) ISEGEN grows 40+-node cuts covering whole MixColumns columns,")
	fmt.Println("but only a handful of instances fit. This is the paper's Figure 7.")
}
