// Quickstart: build a small data-flow graph with the public builder API,
// run ISEGEN on it and print the identified Instruction Set Extension.
//
// The kernel is the motivating example of every ISE paper: a saturating
// multiply-accumulate. ISEGEN should discover that the whole computation
// fits one AFU instruction under the default (4,2) port constraints.
package main

import (
	"fmt"
	"log"
	"os"

	isegen "repro"
)

func main() {
	// One basic block executed 1000 times per profile: acc' =
	// clamp(acc + a*b).
	bu := isegen.NewBuilder("satmac", 1000)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	prod := bu.Mul(a, b)
	sum := bu.Add(prod, acc)
	hi := bu.Min(sum, bu.Imm(32767))
	lo := bu.Max(hi, bu.Imm(-32768))
	bu.LiveOut(lo)
	blk, err := bu.Build()
	if err != nil {
		log.Fatal(err)
	}
	app := &isegen.Application{Name: "quickstart", Blocks: []*isegen.Block{blk}}

	cfg := isegen.DefaultConfig() // I/O (4,2), up to 4 AFUs
	res, err := isegen.Generate(app, cfg)
	if err != nil {
		log.Fatal(err)
	}

	for i, sel := range res.Selections {
		cut := sel.Cut
		fmt.Printf("ISE %d: nodes %v, %d inputs, %d outputs\n", i+1, cut.Nodes, cut.NumIn, cut.NumOut)
		fmt.Printf("  %d software cycles -> %d AFU cycles: saves %.0f cycles per execution\n",
			cut.SWLat, cut.HWCyclesInt(), cut.Merit())
	}
	fmt.Printf("application speedup: %.2fx (%.0f%% of dynamic cycles covered)\n",
		res.Report.Speedup, 100*res.Report.Coverage)

	// Export the block with the cut highlighted for Graphviz.
	if len(res.Selections) > 0 {
		f, err := os.Create("satmac.dot")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := isegen.WriteDOT(f, blk, []*isegen.BitSet{res.Selections[0].Cut.Nodes}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote satmac.dot (render with: dot -Tsvg satmac.dot)")
	}
}
