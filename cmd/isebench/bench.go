package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	isegen "repro"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/kernels"
	"repro/internal/latency"
	"repro/internal/obs"
	"repro/internal/search"
)

// benchRecord is one measured suite in the JSON benchmark file: wall time
// and allocation counts for a single iteration (-benchtime=1x semantics,
// the same protocol as the CI benchmark smoke step), plus the
// engine-internal counter deltas observed during the run — work measures
// (nodes explored, toggles, probes) that stay meaningful when wall-clock
// is noisy. Counters are recorded with a counters-only recorder (span
// recording disabled), whose overhead is a handful of atomic adds per
// trajectory/search, so allocs/op stays comparable with older files.
type benchRecord struct {
	Name        string           `json:"name"`
	NsPerOp     int64            `json:"ns_per_op"`
	AllocsPerOp uint64           `json:"allocs_per_op"`
	BytesPerOp  uint64           `json:"bytes_per_op"`
	Counters    map[string]int64 `json:"counters,omitempty"`
}

// benchFile is the BENCH_<rev>.json schema: enough provenance to compare
// two revisions' trajectories honestly (CPU count matters — on a 1-CPU
// container the parallel suites show parity with the sequential ones).
type benchFile struct {
	Schema    int           `json:"schema"`
	Rev       string        `json:"rev"`
	GoVersion string        `json:"go_version"`
	CPUs      int           `json:"cpus"`
	BenchTime string        `json:"bench_time"`
	Benches   []benchRecord `json:"benches"`
}

// gitRev resolves the current commit (short) by reading .git directly, so
// the harness needs no git binary; "dev" when unavailable.
func gitRev() string {
	head, err := os.ReadFile(".git/HEAD")
	if err != nil {
		return "dev"
	}
	ref := strings.TrimSpace(string(head))
	if h, ok := strings.CutPrefix(ref, "ref: "); ok {
		b, err := os.ReadFile(filepath.Join(".git", filepath.FromSlash(h)))
		if err == nil {
			ref = strings.TrimSpace(string(b))
		} else if packed := packedRef(h); packed != "" {
			// Fresh clones and gc'd repositories keep refs in
			// .git/packed-refs rather than loose files.
			ref = packed
		} else {
			return "dev"
		}
	}
	if len(ref) < 12 {
		return "dev"
	}
	return ref[:12]
}

// packedRef looks a ref name up in .git/packed-refs ("<hash> <refname>"
// lines; '#' comments and '^' peel lines skipped).
func packedRef(name string) string {
	b, err := os.ReadFile(".git/packed-refs")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" || line[0] == '#' || line[0] == '^' {
			continue
		}
		hash, ref, ok := strings.Cut(line, " ")
		if ok && strings.TrimSpace(ref) == name {
			return hash
		}
	}
	return ""
}

// measure runs fn once, recording wall time and allocation deltas (a GC
// first stabilizes the Mallocs counter against leftover garbage).
func measure(name string, fn func()) benchRecord {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchRecord{
		Name:        name,
		NsPerOp:     dur.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
	}
}

// benchSuites are the Figure 4 and Figure 6 measurement points, each as a
// sequential / parallel pair so the perf trajectory captures both the
// allocation work (visible on any machine) and the fan-out speedup
// (visible on multi-core hosts only). Each suite takes the harness
// context, which carries a counters-only recorder so the record can
// report work deltas next to ns/op.
func benchSuites() []struct {
	name string
	fn   func(ctx context.Context)
} {
	model := latency.Default()
	fig4KL := func(workers int) func(context.Context) {
		return func(ctx context.Context) {
			specs := kernels.All()
			r := &search.Runner{Workers: workers, Cache: search.NewCostCache()}
			for _, spec := range specs {
				cfg := core.DefaultConfig()
				if _, _, err := r.GenerateContext(ctx, spec.App, cfg, search.Merit(model), nil); err != nil {
					fatal(err)
				}
			}
		}
	}
	fig4Iterative := func(subtreeWorkers int) func(context.Context) {
		return func(ctx context.Context) {
			for _, spec := range kernels.All() {
				if spec.CriticalSize > 100 {
					continue
				}
				opt := exact.Options{MaxIn: 4, MaxOut: 2, Model: model, Budget: 2_000_000_000, Workers: subtreeWorkers}
				if _, err := exact.IterativeContext(ctx, spec.App.Blocks[0], opt, 4); err != nil {
					fatal(err)
				}
			}
		}
	}
	fig4Exact := func(subtreeWorkers int) func(context.Context) {
		return func(ctx context.Context) {
			for _, spec := range kernels.All() {
				if spec.CriticalSize > 25 {
					continue
				}
				opt := exact.Options{MaxIn: 4, MaxOut: 2, Model: model, Budget: 2_000_000_000, Workers: subtreeWorkers}
				if _, err := exact.MultiCutContext(ctx, spec.App.Blocks[0], opt, 4); err != nil {
					fatal(err)
				}
			}
		}
	}
	// fig4Racing covers exactly fig4Exact's kernel subset so the pair is
	// directly comparable: same blocks, same optimal answers, the racing
	// suite measuring how much the K-L-seeded bound prunes the proof.
	fig4Racing := func(klWorkers, subtreeWorkers int) func(context.Context) {
		return func(ctx context.Context) {
			for _, spec := range kernels.All() {
				if spec.CriticalSize > 25 {
					continue
				}
				eng := &search.Racing{Cache: search.NewCostCache()}
				lim := &search.Limits{
					MaxIn: 4, MaxOut: 2, NISE: 4, Budget: 2_000_000_000,
					Workers: klWorkers, SubtreeWorkers: subtreeWorkers,
				}
				if _, _, err := eng.RunContext(ctx, spec.App.Blocks[0], search.Merit(model), lim); err != nil {
					fatal(err)
				}
			}
		}
	}
	fig6AES := func(workers int) func(context.Context) {
		return func(ctx context.Context) {
			app := kernels.AES()
			cfg := isegen.DefaultConfig()
			cfg.Workers = workers
			if _, err := isegen.GenerateContext(ctx, app, cfg, nil); err != nil {
				fatal(err)
			}
		}
	}
	return []struct {
		name string
		fn   func(ctx context.Context)
	}{
		{"figure4/isegen/seq", fig4KL(1)},
		{"figure4/isegen/par", fig4KL(0)},
		{"figure4/iterative/seq", fig4Iterative(0)},
		{"figure4/iterative/par", fig4Iterative(-1)},
		{"figure4/exact/seq", fig4Exact(0)},
		{"figure4/exact/par", fig4Exact(-1)},
		{"figure4/racing/seq", fig4Racing(1, 0)},
		{"figure4/racing/par", fig4Racing(0, -1)},
		{"figure6/aes/seq", fig6AES(1)},
		{"figure6/aes/par", fig6AES(0)},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "isebench:", err)
	os.Exit(1)
}

// runBenchJSON is the `isebench -json` mode: measure every suite once and
// write BENCH_<rev>.json (or `out`; "-" for stdout). The checked-in
// BENCH_baseline.json is one of these files, seeding the repository's
// tracked perf trajectory.
func runBenchJSON(rev, out string) error {
	if rev == "" {
		rev = gitRev()
	}
	bf := benchFile{
		Schema:    1,
		Rev:       rev,
		GoVersion: runtime.Version(),
		CPUs:      runtime.GOMAXPROCS(0),
		BenchTime: "1x",
	}
	for _, s := range benchSuites() {
		// Counters-only recorder: span recording disabled (cap 0), so the
		// span path stays out of the measured allocation counts and only
		// the per-flush atomic adds ride along.
		or := obs.NewRecorder(0)
		ctx := obs.WithRecorder(context.Background(), or)
		rec := measure(s.name, func() { s.fn(ctx) })
		rec.Counters = or.Counters().Map()
		fmt.Fprintf(os.Stderr, "%-24s %12d ns/op %10d allocs/op %12d B/op\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.BytesPerOp)
		bf.Benches = append(bf.Benches, rec)
	}
	var w io.Writer
	switch out {
	case "-":
		w = os.Stdout
	case "":
		out = "BENCH_" + rev + ".json"
		fallthrough
	default:
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
		fmt.Fprintln(os.Stderr, "writing", out)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bf)
}
