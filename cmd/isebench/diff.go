package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Allocation tolerances for the -diff gate. Sequential suites drive the
// engines without spawning goroutines, so their allocs/op are deterministic
// up to runtime noise (GC bookkeeping, timer internals) — a small epsilon
// absorbs that while still failing any real regression by orders of
// magnitude. Parallel suites additionally see pool hits and goroutine
// spawns vary with scheduling and CPU count, so they get a wider band.
const (
	seqAllocSlackPct = 2
	seqAllocSlackAbs = 64
	parAllocSlackPct = 20
	parAllocSlackAbs = 256
)

// counterWarnPct is the growth threshold for engine work counters in
// -diff: a suite whose exact_explored (or toggles, probes, ...) grew past
// this warns even when its ns/op sits inside the tolerance — more work at
// the same wall-clock usually means the next machine pays for it.
const counterWarnPct = 10

// workCounters are the counter deltas -diff gates on: monotone measures
// of search effort, where growth means the engine did more work for the
// same answer. Deliberately excluded: pool/cache hit counters (growth
// there is an improvement) and bound raises (more raises can mean faster
// convergence).
var workCounters = []string{
	"kl_toggles", "kl_probes", "kl_cp_full_sweeps", "kl_gain_rebuilds",
	"kl_gaincache_misses", "kl_pool_misses", "exact_explored",
	"exact_subtree_tasks", "genetic_evaluations", "cache_misses",
}

// counterWarnings compares a suite's work-counter deltas against the
// baseline, returning one warning line per counter that grew past
// counterWarnPct. Files without counters (older schema-1 baselines) are
// silently ungated — both sides must carry a counter for it to be
// compared.
func counterWarnings(base, fresh map[string]int64) []string {
	var warns []string
	for _, name := range workCounters {
		b, okB := base[name]
		f, okF := fresh[name]
		if !okB || !okF || b <= 0 {
			continue
		}
		if f > b+b*counterWarnPct/100 {
			warns = append(warns, fmt.Sprintf("%s %d -> %d (%+.1f%%, warn at +%d%%)",
				name, b, f, pctDelta(float64(f), float64(b)), counterWarnPct))
		}
	}
	return warns
}

// counterImprovements is counterWarnings' mirror: work counters that
// shrank past counterWarnPct. Reported (not merely stayed silent on) so a
// perf PR's counter win shows up in the gate output — and so a forgotten
// re-baseline after such a PR is visible as a wall of improvement lines
// instead of nothing.
func counterImprovements(base, fresh map[string]int64) []string {
	var wins []string
	for _, name := range workCounters {
		b, okB := base[name]
		f, okF := fresh[name]
		if !okB || !okF || b <= 0 {
			continue
		}
		if f < b-b*counterWarnPct/100 {
			wins = append(wins, fmt.Sprintf("%s %d -> %d (%+.1f%%)",
				name, b, f, pctDelta(float64(f), float64(b))))
		}
	}
	return wins
}

// loadBenchFile reads one BENCH_<rev>.json.
func loadBenchFile(path string) (*benchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(b, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if bf.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, bf.Schema)
	}
	return &bf, nil
}

// allocLimit returns the failure threshold for a suite's allocs/op.
func allocLimit(name string, base uint64) uint64 {
	pct, abs := uint64(seqAllocSlackPct), uint64(seqAllocSlackAbs)
	if strings.HasSuffix(name, "/par") {
		pct, abs = parAllocSlackPct, parAllocSlackAbs
	}
	slack := base * pct / 100
	if slack < abs {
		slack = abs
	}
	return base + slack
}

// runBenchDiff is the `isebench -diff` gate: compare a freshly measured
// benchmark file against the tracked baseline, suite by suite. Allocation
// regressions fail (allocs are deterministic modulo the slack above);
// ns/op regressions past nsTol (a ratio, e.g. 0.5 = +50%) only warn, since
// wall-clock depends on the machine the gate runs on. A suite present in
// the baseline but missing from the fresh file fails — silently dropping a
// measurement would hide exactly the regression the gate exists to catch.
func runBenchDiff(basePath, freshPath string, nsTol float64) error {
	base, err := loadBenchFile(basePath)
	if err != nil {
		return err
	}
	fresh, err := loadBenchFile(freshPath)
	if err != nil {
		return err
	}
	freshBy := make(map[string]benchRecord, len(fresh.Benches))
	for _, r := range fresh.Benches {
		freshBy[r.Name] = r
	}
	fmt.Printf("bench-diff: %s (rev %s, %d cpus) vs %s (rev %s, %d cpus)\n",
		freshPath, fresh.Rev, fresh.CPUs, basePath, base.Rev, base.CPUs)
	// On a 1-CPU machine the parallel suites degenerate to their sequential
	// twins: fan-out buys nothing, so a /par ns/op sitting on top of /seq is
	// the expected shape, not a regression signal. Say so on every /par line
	// rather than leaving the reader to reverse-engineer it from the header.
	oneCPU := base.CPUs == 1 || fresh.CPUs == 1
	failures := 0
	for _, b := range base.Benches {
		f, ok := freshBy[b.Name]
		if !ok {
			fmt.Printf("FAIL %-24s missing from %s\n", b.Name, freshPath)
			failures++
			continue
		}
		status := "ok  "
		detail := ""
		if limit := allocLimit(b.Name, b.AllocsPerOp); f.AllocsPerOp > limit {
			status = "FAIL"
			detail = fmt.Sprintf("  allocs/op regressed: %d -> %d (limit %d)", b.AllocsPerOp, f.AllocsPerOp, limit)
			failures++
		} else if b.NsPerOp > 0 && float64(f.NsPerOp) > float64(b.NsPerOp)*(1+nsTol) {
			status = "WARN"
			detail = fmt.Sprintf("  ns/op %.2fx baseline (tolerance %.2fx)", float64(f.NsPerOp)/float64(b.NsPerOp), 1+nsTol)
		}
		if oneCPU && strings.HasSuffix(b.Name, "/par") {
			detail += "  [1 cpu: parity with /seq expected]"
		}
		// Work-counter regressions warn even when ns/op is in tolerance:
		// wall-clock noise can mask an engine quietly exploring more nodes.
		cwarns := counterWarnings(b.Counters, f.Counters)
		if status == "ok  " && len(cwarns) > 0 {
			status = "WARN"
		}
		fmt.Printf("%s %-24s %12d ns/op (%+6.1f%%) %10d allocs/op (%+6.1f%%)%s\n",
			status, b.Name,
			f.NsPerOp, pctDelta(float64(f.NsPerOp), float64(b.NsPerOp)),
			f.AllocsPerOp, pctDelta(float64(f.AllocsPerOp), float64(b.AllocsPerOp)),
			detail)
		for _, cw := range cwarns {
			fmt.Printf("     %-24s work counter regressed: %s\n", "", cw)
		}
		for _, ci := range counterImprovements(b.Counters, f.Counters) {
			fmt.Printf("     %-24s work counter improved: %s (re-baseline to lock in)\n", "", ci)
		}
	}
	// The mirror direction: a fresh suite with no baseline entry is not
	// gated at all — surface it so adding a benchmark without
	// re-baselining does not silently escape the gate forever.
	baseBy := make(map[string]bool, len(base.Benches))
	for _, b := range base.Benches {
		baseBy[b.Name] = true
	}
	for _, f := range fresh.Benches {
		if !baseBy[f.Name] {
			fmt.Printf("WARN %-24s not in %s: ungated; re-baseline to start tracking it\n", f.Name, basePath)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d suite(s) regressed allocs/op against %s", failures, basePath)
	}
	return nil
}

func pctDelta(now, was float64) float64 {
	if was == 0 {
		return 0
	}
	return (now/was - 1) * 100
}
