// Command isebench regenerates every table and figure of the paper's
// evaluation section, plus the ablation and future-work studies.
//
// Usage:
//
//	isebench            run everything
//	isebench -fig 4     only Figure 4 (speedup + runtime comparison)
//	isebench -fig 6     only Figure 6 (AES speedup sweep)
//	isebench -fig 7     only Figure 7 (AES cut reusability)
//	isebench -ablation  only the ablation studies
//	isebench -sim       only the cycle-level simulation validation
//	isebench -energy    only the code-size / energy table
//	isebench -area      only the AFU area-budget study
//	isebench -json      measure the Figure 4/6 suites (ns/op, allocs/op,
//	                    engine work-counter deltas; sequential vs parallel)
//	                    and write BENCH_<rev>.json — the repository's
//	                    tracked perf trajectory; the checked-in
//	                    BENCH_baseline.json is one such file
//	isebench -diff BENCH_baseline.json BENCH_<rev>.json
//	                    gate a fresh measurement against the baseline:
//	                    exits non-zero when any suite's allocs/op regressed
//	                    (deterministic, so compared near-exactly; parallel
//	                    suites get a wider band for pool/scheduler noise),
//	                    warns when ns/op exceeds the -ns-tol ratio, and
//	                    warns when a work counter (exact_explored,
//	                    kl_toggles, ...) grows >10% even inside ns/op
//	                    tolerance
//
// All harnesses fan independent benchmark/configuration cells out across
// -workers (default: one per CPU core); results are bit-identical to a
// sequential run (-workers 1).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "run only the given figure (4, 6 or 7)")
		ablation = flag.Bool("ablation", false, "run only the ablation studies")
		simOnly  = flag.Bool("sim", false, "run only the simulation validation")
		energy   = flag.Bool("energy", false, "run only the code-size/energy table")
		area     = flag.Bool("area", false, "run only the AFU area-budget study")
		workers  = flag.Int("workers", 0, "worker pool size (0 = one per CPU core; results are identical)")
		jsonOut  = flag.Bool("json", false, "measure the Figure 4/6 suites (sequential vs parallel, -benchtime=1x protocol) and write BENCH_<rev>.json instead of the tables")
		benchRev = flag.String("rev", "", "revision label for -json (default: the current git commit)")
		benchOut = flag.String("out", "", `output path for -json ("-" = stdout; default BENCH_<rev>.json)`)
		diffMode = flag.Bool("diff", false, "compare two BENCH json files (baseline fresh): exit non-zero on allocs/op regressions, warn on ns/op past -ns-tol")
		nsTol    = flag.Float64("ns-tol", 0.5, "ns/op warning tolerance for -diff as a ratio over baseline (0.5 = +50%)")
	)
	flag.Parse()
	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "isebench: -diff needs two arguments: <baseline.json> <fresh.json>")
			os.Exit(2)
		}
		if err := runBenchDiff(flag.Arg(0), flag.Arg(1), *nsTol); err != nil {
			fmt.Fprintln(os.Stderr, "isebench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := runBenchJSON(*benchRev, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "isebench:", err)
			os.Exit(1)
		}
		return
	}
	o := experiments.DefaultOptions()
	o.Workers = *workers
	all := *fig == 0 && !*ablation && !*simOnly && !*energy && !*area

	if all || *fig == 4 {
		rows := experiments.Figure4(o)
		experiments.PrintFigure4(os.Stdout, rows)
		fmt.Println()
	}
	if all || *fig == 6 {
		for _, nise := range []int{1, 4} {
			pts := experiments.Figure6(o, nise)
			experiments.PrintFigure6(os.Stdout, nise, pts)
			fmt.Println()
		}
	}
	if all || *fig == 7 {
		rows := experiments.Figure7(o)
		experiments.PrintFigure7(os.Stdout, rows)
		fmt.Println()
	}
	if all || *ablation {
		experiments.PrintAblation(os.Stdout, "Ablation: gain-function components (geomean over Fig. 4 suite)", experiments.AblationWeights(o))
		fmt.Println()
		experiments.PrintAblation(os.Stdout, "Ablation: K-L pass bound", experiments.AblationPasses(o))
		fmt.Println()
		experiments.PrintAblation(os.Stdout, "Ablation: dispersed restarts on AES (4,2)", experiments.AblationRestarts(o))
		fmt.Println()
	}
	if all || *simOnly {
		rows, err := experiments.SimulationValidation(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "isebench:", err)
			os.Exit(1)
		}
		experiments.PrintSim(os.Stdout, rows)
		fmt.Println()
	}
	if all || *energy {
		rows, err := experiments.EnergyCodeSize(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "isebench:", err)
			os.Exit(1)
		}
		experiments.PrintEnergy(os.Stdout, rows)
		fmt.Println()
	}
	if all || *area {
		rows, err := experiments.AreaStudy(o, experiments.DefaultAreaBudgets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "isebench:", err)
			os.Exit(1)
		}
		experiments.PrintAreaStudy(os.Stdout, rows)
	}
}
