// Command isegen identifies Instruction Set Extensions in .dfg files.
//
// Usage:
//
//	isegen [flags] file.dfg
//
// The input may contain several blocks (an application). Results are
// printed per cut with node sets, I/O counts, merits and claimed instance
// counts, followed by the whole-application report.
//
// Flags select the algorithm (-algo isegen|genetic|exact|iterative — any
// name in the unified search-engine registry), the port constraints (-in,
// -out), the AFU budget (-nise), the worker-pool size (-workers) and
// optional DOT output highlighting the cuts (-dot file).
//
// -json switches to the machine-readable NDJSON result stream — the same
// schema, code path and byte-for-byte output as the isegend service
// (internal/service.Run), so offline and served runs are diffable.
// -cache-dir persists cut costings across runs (keyed by canonical block
// hash), making repeated sweeps over the same file near-free.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	isegen "repro"
	"repro/internal/service"
)

func main() {
	var (
		algo     = flag.String("algo", "isegen", "algorithm: "+strings.Join(isegen.SearchEngineNames(), ", "))
		maxIn    = flag.Int("in", 4, "maximum ISE input operands")
		maxOut   = flag.Int("out", 2, "maximum ISE output operands")
		nise     = flag.Int("nise", 4, "maximum number of ISEs (AFUs)")
		seed     = flag.Int64("seed", 1, "random seed for the genetic algorithm")
		workers  = flag.Int("workers", 0, "worker pool size (0 = one per CPU core; results are identical)")
		dotFile  = flag.String("dot", "", "write a Graphviz rendering of the first block with cuts highlighted")
		noReuse  = flag.Bool("noreuse", false, "disable reuse matching (each cut counts once)")
		jsonOut  = flag.Bool("json", false, "emit the NDJSON result stream (same schema and bytes as the isegend service)")
		cacheDir = flag.String("cache-dir", "", "persist cut costings under this directory across runs")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: isegen [flags] file.dfg")
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *jsonOut {
		if *dotFile != "" {
			fmt.Fprintln(os.Stderr, "isegen: -dot is not supported with -json (the NDJSON stream carries no render); drop one of the two flags")
			os.Exit(2)
		}
		err = runJSON(flag.Arg(0), *algo, *maxIn, *maxOut, *nise, *seed, *workers, *cacheDir, *noReuse)
	} else {
		err = run(flag.Arg(0), *algo, *maxIn, *maxOut, *nise, *seed, *workers, *dotFile, *cacheDir, *noReuse)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "isegen:", err)
		os.Exit(1)
	}
}

// openCache builds the run's cut-costing cache: disk-persistent when
// cacheDir is set (content-hash-keyed, flushed by the caller), otherwise
// a plain in-memory cache.
func openCache(cacheDir string) (*isegen.CostCache, error) {
	if cacheDir == "" {
		return isegen.NewCostCache(), nil
	}
	store, err := isegen.NewCostCacheStore(cacheDir, 0)
	if err != nil {
		return nil, err
	}
	return isegen.NewPersistentCostCache(store), nil
}

// runJSON is the machine-readable path: service.Run streaming NDJSON to
// stdout — exactly what the isegend daemon serves, so the outputs diff
// clean. With -cache-dir the cut-costing cache is loaded from and flushed
// back to disk, so a repeated run skips costing entirely.
func runJSON(path, algo string, maxIn, maxOut, nise int, seed int64, workers int, cacheDir string, noReuse bool) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// The application name is not part of the result stream, so the
	// upload name used by the service and the file path used here cannot
	// break the determinism contract.
	app, err := isegen.ParseApplication(path, f)
	if err != nil {
		return err
	}
	cache, err := openCache(cacheDir)
	if err != nil {
		return err
	}
	// Flush on every outcome: costings computed before a late failure
	// are still worth persisting for the next run.
	defer func() {
		if ferr := cache.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	p := service.Params{
		Algo: algo, MaxIn: maxIn, MaxOut: maxOut, NISE: nise,
		Seed: seed, Workers: workers, Reuse: !noReuse,
	}
	return service.Run(context.Background(), app, p, cache, service.NDJSONEmitter(os.Stdout))
}

func run(path, algo string, maxIn, maxOut, nise int, seed int64, workers int, dotFile, cacheDir string, noReuse bool) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	app, err := isegen.ParseApplication(path, f)
	if err != nil {
		return err
	}
	model := isegen.DefaultModel()
	cache, err := openCache(cacheDir)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := cache.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	ctx := context.Background()

	var sels []isegen.Selection
	if algo == "isegen" {
		// The ISEGEN flow is application-level: the driver walks all
		// blocks by speedup potential with reuse-aware scoring.
		cfg := isegen.DefaultConfig()
		cfg.MaxIn, cfg.MaxOut, cfg.NISE, cfg.Workers = maxIn, maxOut, nise, workers
		if noReuse {
			cuts, err := isegen.GenerateCutsOnlyContext(ctx, app, cfg, cache)
			if err != nil {
				return err
			}
			sels = service.SingleInstanceSelections(app, cuts)
		} else {
			res, err := isegen.GenerateContext(ctx, app, cfg, cache)
			if err != nil {
				return err
			}
			sels = res.Selections
		}
	} else {
		// Baselines operate per block through the unified engine
		// registry; run them on the largest block, as the paper does
		// (the critical basic block).
		eng, err := isegen.NewSearchEngine(algo, cache)
		if err != nil {
			return err
		}
		if ga, ok := eng.(interface{ SetSeed(int64) }); ok {
			ga.SetSeed(seed)
		}
		hot := 0
		for i, b := range app.Blocks {
			if b.N() > app.Blocks[hot].N() {
				hot = i
			}
		}
		lim := &isegen.SearchLimits{
			MaxIn: maxIn, MaxOut: maxOut, NISE: nise,
			NodeLimit: isegen.DefaultNodeLimit(algo), Budget: isegen.DefaultSearchBudget,
			Workers: workers,
		}
		cuts, _, err := eng.Run(app.Blocks[hot], isegen.MeritObjective(model), lim)
		if err != nil {
			return err
		}
		if noReuse {
			sels = service.SingleInstanceSelections(app, cuts)
		} else {
			blockIdx := map[*isegen.Block]int{}
			for i, b := range app.Blocks {
				blockIdx[b] = i
			}
			sels = isegen.ClaimAllWithReuse(app, cuts, func(c *isegen.Cut) int { return blockIdx[c.Block] })
		}
	}

	for i, sel := range sels {
		fmt.Printf("ISE %d: block %q nodes %v\n", i+1, sel.Cut.Block.Name, sel.Cut.Nodes)
		fmt.Printf("  io (%d,%d), swlat %d, afu cycles %d, merit %.0f, instances %d\n",
			sel.Cut.NumIn, sel.Cut.NumOut, sel.Cut.SWLat, sel.Cut.HWCyclesInt(), sel.Cut.Merit(), len(sel.Instances))
	}
	rep, err := isegen.Evaluate(app, model, sels)
	if err != nil {
		return err
	}
	fmt.Printf("application: speedup %.3f, coverage %.1f%%, code size %d -> %d, energy %.1f%%\n",
		rep.Speedup, 100*rep.Coverage, rep.StaticBefore, rep.StaticAfter, 100*rep.EnergyAfter/rep.EnergyBefore)

	if dotFile != "" {
		var cuts []*isegen.BitSet
		for _, sel := range sels {
			if sel.Cut.Block == app.Blocks[0] {
				cuts = append(cuts, sel.Cut.Nodes)
			}
		}
		df, err := os.Create(dotFile)
		if err != nil {
			return err
		}
		defer df.Close()
		if err := isegen.WriteDOT(df, app.Blocks[0], cuts); err != nil {
			return err
		}
		fmt.Println("wrote", dotFile)
	}
	return nil
}
