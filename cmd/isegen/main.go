// Command isegen identifies Instruction Set Extensions in .dfg files.
//
// Usage:
//
//	isegen [flags] file.dfg
//
// The input may contain several blocks (an application). Results are
// printed per cut with node sets, I/O counts, merits and claimed instance
// counts, followed by the whole-application report.
//
// Flags select the algorithm (-algo isegen|genetic|exact|iterative — any
// name in the unified search-engine registry), the port constraints (-in,
// -out), the AFU budget (-nise), the worker-pool size (-workers) and
// optional DOT output highlighting the cuts (-dot file).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	isegen "repro"
)

func main() {
	var (
		algo    = flag.String("algo", "isegen", "algorithm: "+strings.Join(isegen.SearchEngineNames(), ", "))
		maxIn   = flag.Int("in", 4, "maximum ISE input operands")
		maxOut  = flag.Int("out", 2, "maximum ISE output operands")
		nise    = flag.Int("nise", 4, "maximum number of ISEs (AFUs)")
		seed    = flag.Int64("seed", 1, "random seed for the genetic algorithm")
		workers = flag.Int("workers", 0, "worker pool size (0 = one per CPU core; results are identical)")
		dotFile = flag.String("dot", "", "write a Graphviz rendering of the first block with cuts highlighted")
		noReuse = flag.Bool("noreuse", false, "disable reuse matching (each cut counts once)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: isegen [flags] file.dfg")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *algo, *maxIn, *maxOut, *nise, *seed, *workers, *dotFile, *noReuse); err != nil {
		fmt.Fprintln(os.Stderr, "isegen:", err)
		os.Exit(1)
	}
}

func run(path, algo string, maxIn, maxOut, nise int, seed int64, workers int, dotFile string, noReuse bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	app, err := isegen.ParseApplication(path, f)
	if err != nil {
		return err
	}
	model := isegen.DefaultModel()

	var sels []isegen.Selection
	if algo == "isegen" {
		// The ISEGEN flow is application-level: the driver walks all
		// blocks by speedup potential with reuse-aware scoring.
		cfg := isegen.DefaultConfig()
		cfg.MaxIn, cfg.MaxOut, cfg.NISE, cfg.Workers = maxIn, maxOut, nise, workers
		if noReuse {
			cuts, err := isegen.GenerateCutsOnly(app, cfg)
			if err != nil {
				return err
			}
			sels = cutsToSelections(app, cuts)
		} else {
			res, err := isegen.Generate(app, cfg)
			if err != nil {
				return err
			}
			sels = res.Selections
		}
	} else {
		// Baselines operate per block through the unified engine
		// registry; run them on the largest block, as the paper does
		// (the critical basic block).
		eng, err := isegen.NewSearchEngine(algo, isegen.NewCostCache())
		if err != nil {
			return err
		}
		if ga, ok := eng.(interface{ SetSeed(int64) }); ok {
			ga.SetSeed(seed)
		}
		hot := 0
		for i, b := range app.Blocks {
			if b.N() > app.Blocks[hot].N() {
				hot = i
			}
		}
		lim := &isegen.SearchLimits{
			MaxIn: maxIn, MaxOut: maxOut, NISE: nise,
			NodeLimit: isegen.DefaultNodeLimit(algo), Budget: 2_000_000_000,
			Workers: workers,
		}
		cuts, _, err := eng.Run(app.Blocks[hot], isegen.MeritObjective(model), lim)
		if err != nil {
			return err
		}
		if noReuse {
			sels = cutsToSelections(app, cuts)
		} else {
			blockIdx := map[*isegen.Block]int{}
			for i, b := range app.Blocks {
				blockIdx[b] = i
			}
			sels = isegen.ClaimAllWithReuse(app, cuts, func(c *isegen.Cut) int { return blockIdx[c.Block] })
		}
	}

	for i, sel := range sels {
		fmt.Printf("ISE %d: block %q nodes %v\n", i+1, sel.Cut.Block.Name, sel.Cut.Nodes)
		fmt.Printf("  io (%d,%d), swlat %d, afu cycles %d, merit %.0f, instances %d\n",
			sel.Cut.NumIn, sel.Cut.NumOut, sel.Cut.SWLat, sel.Cut.HWCyclesInt(), sel.Cut.Merit(), len(sel.Instances))
	}
	rep, err := isegen.Evaluate(app, model, sels)
	if err != nil {
		return err
	}
	fmt.Printf("application: speedup %.3f, coverage %.1f%%, code size %d -> %d, energy %.1f%%\n",
		rep.Speedup, 100*rep.Coverage, rep.StaticBefore, rep.StaticAfter, 100*rep.EnergyAfter/rep.EnergyBefore)

	if dotFile != "" {
		var cuts []*isegen.BitSet
		for _, sel := range sels {
			if sel.Cut.Block == app.Blocks[0] {
				cuts = append(cuts, sel.Cut.Nodes)
			}
		}
		df, err := os.Create(dotFile)
		if err != nil {
			return err
		}
		defer df.Close()
		if err := isegen.WriteDOT(df, app.Blocks[0], cuts); err != nil {
			return err
		}
		fmt.Println("wrote", dotFile)
	}
	return nil
}

func cutsToSelections(app *isegen.Application, cuts []*isegen.Cut) []isegen.Selection {
	blockIdx := map[*isegen.Block]int{}
	for i, b := range app.Blocks {
		blockIdx[b] = i
	}
	var sels []isegen.Selection
	for _, c := range cuts {
		sels = append(sels, isegen.Selection{
			Cut:       c,
			Instances: []isegen.Instance{{BlockIdx: blockIdx[c.Block], Nodes: c.Nodes}},
		})
	}
	return sels
}
