// Command isegen identifies Instruction Set Extensions in .dfg files.
//
// Usage:
//
//	isegen [flags] file.dfg
//
// The input may contain several blocks (an application). Results are
// printed per cut with node sets, I/O counts, merits and claimed instance
// counts, followed by the whole-application report.
//
// Flags select the algorithm (-algo isegen|genetic|exact|iterative|racing
// — any name in the unified search-engine registry), the objective
// (-objective merit|reuse|area|energy|latency|class|pareto — any name in
// the objective registry; -gate-penalty, -latency-budget, -class-weights
// and -max-frontier parameterize it), the port constraints (-in, -out),
// the AFU budget (-nise), the worker-pool size (-workers), the exact
// engines' in-block branch-and-bound pool (-subtree-workers, -split-depth;
// results are bit-identical for every value) and optional DOT output
// highlighting the cuts (-dot file).
//
// -algo racing races K-L and the genetic baseline against the exact
// engine per block: each heuristic answer seeds the exact search's
// best-bound, so the proven-optimal result (the same bits -algo exact
// produces) arrives sooner; with -json the stream
// additionally carries "frontier" records marked anytime/optimal as each
// racer publishes. -deadline bounds each block's race wall-clock — on
// expiry the best anytime answer so far is returned without an error
// (racing only; timing-dependent by construction).
//
// The baselines (exact, iterative, genetic) optimize merit internally and
// accept only -objective merit; every other objective requires
// -algo isegen. Invalid pairs are rejected up front with the full list of
// valid combinations. With -objective pareto, selection is by Pareto
// dominance over (merit, area, energy) and the run additionally prints
// the non-dominated frontier.
//
// -json switches to the machine-readable NDJSON result stream — the same
// schema, code path and byte-for-byte output as the isegend service
// (internal/service.Run), so offline and served runs are diffable. An
// explicit -objective extends each selection record with its objective
// vector; -objective pareto adds a "frontier" record. Without -objective
// the stream is bit-identical to the pre-objective schema.
// -cache-dir persists cut costings across runs (keyed by canonical block
// hash), making repeated sweeps over the same file near-free.
//
// -trace file.ndjson records the run's span tree (job → block → engine →
// trajectory/subtree, monotonic timestamps, parent links) plus the
// engine-internal counters and writes them as NDJSON; -summary prints a
// human-readable per-kind/per-counter table to stderr instead of (or in
// addition to) the file. Recording never changes the result stream — the
// NDJSON output is byte-identical with and without -trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	isegen "repro"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		algo      = flag.String("algo", "isegen", "algorithm: "+strings.Join(isegen.SearchEngineNames(), ", "))
		objective = flag.String("objective", "", "objective: "+strings.Join(isegen.ObjectiveNames(), ", ")+
			" (default: reuse-aware scoring, merit with -noreuse; non-merit objectives require -algo isegen)")
		gatePenalty = flag.Float64("gate-penalty", 0, "area objective: merit discount per NAND2 gate (0 = default)")
		latBudget   = flag.Int("latency-budget", 0, "latency objective: max AFU cycles per ISE (required with -objective latency)")
		classWts    = flag.String("class-weights", "", `class objective: comma-separated class=weight list, e.g. "memory=0.5,compute=2"`)
		maxFrontier = flag.Int("max-frontier", 0, "pareto objective: bound on retained frontier points (0 = unbounded; deterministic eviction)")
		maxIn       = flag.Int("in", 4, "maximum ISE input operands")
		maxOut      = flag.Int("out", 2, "maximum ISE output operands")
		nise        = flag.Int("nise", 4, "maximum number of ISEs (AFUs)")
		seed        = flag.Int64("seed", 1, "random seed for the genetic algorithm")
		workers     = flag.Int("workers", 0, "worker pool size (0 = one per CPU core; results are identical)")
		subWorkers  = flag.Int("subtree-workers", 0, "exact engines: in-block branch-and-bound workers (0/1 = single-threaded, -1 = one per CPU core; in-budget runs are identical)")
		splitDepth  = flag.Int("split-depth", 0, "exact engines: decision depth of the subtree split (0 = automatic; results are identical)")
		deadline    = flag.Duration("deadline", 0, "racing engine: per-block wall-clock bound (e.g. 200ms; 0 = none) — on expiry the best anytime answer so far is returned instead of the proven optimum")
		dotFile     = flag.String("dot", "", "write a Graphviz rendering of the first block with cuts highlighted")
		noReuse     = flag.Bool("noreuse", false, "disable reuse matching (each cut counts once)")
		jsonOut     = flag.Bool("json", false, "emit the NDJSON result stream (same schema and bytes as the isegend service)")
		cacheDir    = flag.String("cache-dir", "", "persist cut costings under this directory across runs")
		traceFile   = flag.String("trace", "", "record the run's span trace and counters as NDJSON to this file")
		traceSum    = flag.Bool("summary", false, "print a human-readable span/counter summary to stderr (implies recording)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: isegen [flags] file.dfg")
		flag.Usage()
		os.Exit(2)
	}
	weights, err := service.ParseClassWeights(*classWts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "isegen:", err)
		os.Exit(2)
	}
	p := service.Params{
		Algo: *algo, MaxIn: *maxIn, MaxOut: *maxOut, NISE: *nise,
		Seed: *seed, Workers: *workers, Reuse: !*noReuse,
		SubtreeWorkers: *subWorkers, SplitDepth: *splitDepth,
		Deadline:  *deadline,
		Objective: *objective, GatePenalty: *gatePenalty,
		LatencyBudget: *latBudget, ClassWeights: weights,
		MaxFrontier: *maxFrontier,
	}
	// Validate the full parameter set up front — in particular the
	// objective/engine pairing, so an unsupported combination is one
	// clear usage error listing the valid pairs instead of a rejection
	// from deep inside an engine.
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "isegen:", err)
		os.Exit(2)
	}
	// Recording is attached through the context; the engines see the same
	// code path either way (nil-recorder methods are no-ops), so -trace
	// cannot perturb the result bytes.
	ctx := context.Background()
	var rec *obs.Recorder
	var jobSpan obs.SpanID
	if *traceFile != "" || *traceSum {
		rec = obs.NewRecorder(obs.DefaultSpanCap)
		jobSpan = rec.Start(0, obs.KindJob, p.Algo)
		ctx = obs.WithParentSpan(obs.WithRecorder(ctx, rec), jobSpan)
	}
	if *jsonOut {
		if *dotFile != "" {
			fmt.Fprintln(os.Stderr, "isegen: -dot is not supported with -json (the NDJSON stream carries no render); drop one of the two flags")
			os.Exit(2)
		}
		err = runJSON(ctx, flag.Arg(0), p, *cacheDir)
	} else {
		err = run(ctx, flag.Arg(0), p, *dotFile, *cacheDir)
	}
	if rec != nil {
		rec.End(jobSpan)
		if terr := writeTrace(rec, *traceFile); terr != nil && err == nil {
			err = terr
		}
		if *traceSum {
			rec.WriteSummary(os.Stderr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "isegen:", err)
		os.Exit(1)
	}
}

// writeTrace dumps the recorded span tree and counters as NDJSON.
func writeTrace(rec *obs.Recorder, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteSpans(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openCache builds the run's cut-costing cache: disk-persistent when
// cacheDir is set (content-hash-keyed, flushed by the caller), otherwise
// a plain in-memory cache.
func openCache(cacheDir string) (*isegen.CostCache, error) {
	if cacheDir == "" {
		return isegen.NewCostCache(), nil
	}
	store, err := isegen.NewCostCacheStore(cacheDir, 0)
	if err != nil {
		return nil, err
	}
	return isegen.NewPersistentCostCache(store), nil
}

// runJSON is the machine-readable path: service.Run streaming NDJSON to
// stdout — exactly what the isegend daemon serves, so the outputs diff
// clean. With -cache-dir the cut-costing cache is loaded from and flushed
// back to disk, so a repeated run skips costing entirely.
func runJSON(ctx context.Context, path string, p service.Params, cacheDir string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// The application name is not part of the result stream, so the
	// upload name used by the service and the file path used here cannot
	// break the determinism contract.
	app, err := isegen.ParseApplication(path, f)
	if err != nil {
		return err
	}
	cache, err := openCache(cacheDir)
	if err != nil {
		return err
	}
	// Flush on every outcome: costings computed before a late failure
	// are still worth persisting for the next run.
	defer func() {
		if ferr := cache.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	return service.Run(ctx, app, p, cache, service.NDJSONEmitter(os.Stdout))
}

func run(ctx context.Context, path string, p service.Params, dotFile, cacheDir string) (err error) {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	app, err := isegen.ParseApplication(path, f)
	if err != nil {
		return err
	}
	model := isegen.DefaultModel()
	cache, err := openCache(cacheDir)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := cache.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	var sels []isegen.Selection
	var frontier *isegen.Frontier
	if p.Algo == "isegen" {
		// The ISEGEN flow is application-level: the driver walks all
		// blocks by speedup potential under the chosen objective
		// (default: reuse-aware scoring).
		cfg := isegen.DefaultConfig()
		cfg.MaxIn, cfg.MaxOut, cfg.NISE, cfg.Workers = p.MaxIn, p.MaxOut, p.NISE, p.Workers
		if !p.Reuse {
			cuts, fr, err := isegen.GenerateCutsOnlyWithObjectiveContext(ctx, app, cfg, p.Objective, p.ObjectiveParams(), cache)
			if err != nil {
				return err
			}
			sels, frontier = service.SingleInstanceSelections(app, cuts), fr
		} else {
			res, err := isegen.GenerateWithObjectiveContext(ctx, app, cfg, p.Objective, p.ObjectiveParams(), cache)
			if err != nil {
				return err
			}
			sels, frontier = res.Selections, res.Frontier
		}
	} else {
		// Baselines operate per block through the unified engine
		// registry; run them on the largest block, as the paper does
		// (the critical basic block).
		eng, err := isegen.NewSearchEngine(p.Algo, cache)
		if err != nil {
			return err
		}
		if ga, ok := eng.(interface{ SetSeed(int64) }); ok {
			ga.SetSeed(p.Seed)
		}
		hot := 0
		for i, b := range app.Blocks {
			if b.N() > app.Blocks[hot].N() {
				hot = i
			}
		}
		lim := &isegen.SearchLimits{
			MaxIn: p.MaxIn, MaxOut: p.MaxOut, NISE: p.NISE,
			NodeLimit: isegen.DefaultNodeLimit(p.Algo), Budget: isegen.DefaultSearchBudget,
			Workers: p.Workers, SubtreeWorkers: p.SubtreeWorkers, SplitDepth: p.SplitDepth,
			Deadline: p.Deadline,
		}
		cuts, _, err := eng.RunContext(ctx, app.Blocks[hot], isegen.MeritObjective(model), lim)
		if err != nil {
			return err
		}
		if !p.Reuse {
			sels = service.SingleInstanceSelections(app, cuts)
		} else {
			blockIdx := map[*isegen.Block]int{}
			for i, b := range app.Blocks {
				blockIdx[b] = i
			}
			sels = isegen.ClaimAllWithReuse(app, cuts, func(c *isegen.Cut) int { return blockIdx[c.Block] })
		}
	}

	for i, sel := range sels {
		fmt.Printf("ISE %d: block %q nodes %v\n", i+1, sel.Cut.Block.Name, sel.Cut.Nodes)
		fmt.Printf("  io (%d,%d), swlat %d, afu cycles %d, merit %.0f, instances %d\n",
			sel.Cut.NumIn, sel.Cut.NumOut, sel.Cut.SWLat, sel.Cut.HWCyclesInt(), sel.Cut.Merit(), len(sel.Instances))
		if p.Objective != "" {
			v := isegen.CutObjectiveVector(model, sel.Cut)
			fmt.Printf("  objectives: %s\n", v)
		}
	}
	if frontier != nil {
		fmt.Printf("pareto frontier: %d non-dominated candidates (merit max, area min, energy max; * = selected)\n", frontier.Len())
		for _, pt := range frontier.Points() {
			mark := " "
			if pt.Selected {
				mark = "*"
			}
			fmt.Printf(" %s block %d nodes %v: %s\n", mark, pt.Block, pt.Cut.Nodes, pt.Vector)
		}
	}
	rep, err := isegen.Evaluate(app, model, sels)
	if err != nil {
		return err
	}
	fmt.Printf("application: speedup %.3f, coverage %.1f%%, code size %d -> %d, energy %.1f%%\n",
		rep.Speedup, 100*rep.Coverage, rep.StaticBefore, rep.StaticAfter, 100*rep.EnergyAfter/rep.EnergyBefore)

	if dotFile != "" {
		var cuts []*isegen.BitSet
		for _, sel := range sels {
			if sel.Cut.Block == app.Blocks[0] {
				cuts = append(cuts, sel.Cut.Nodes)
			}
		}
		df, err := os.Create(dotFile)
		if err != nil {
			return err
		}
		defer df.Close()
		if err := isegen.WriteDOT(df, app.Blocks[0], cuts); err != nil {
			return err
		}
		fmt.Println("wrote", dotFile)
	}
	return nil
}
