// Command isegend is the long-lived ISE-selection service: it accepts
// .dfg uploads over HTTP, queues them on a bounded FIFO with per-tenant
// worker budgets, runs them on the unified search engine, and streams
// per-block selections back as NDJSON — bit-identical to what
// `isegen -json` produces offline for the same input and parameters.
//
// Endpoints:
//
//	POST /v1/select?algo=isegen&in=4&out=2&nise=4&workers=0&reuse=true
//	     body: .dfg text; optional X-Tenant header (or ?tenant=) for
//	     budget accounting. Response: NDJSON — one "block" record per
//	     basic block in block order, then one "summary" record.
//	     &subtree_workers= and &split_depth= (exact engines, including
//	     racing) fan the branch-and-bound out inside each block on a
//	     shared best-bound — results stay bit-identical for every value;
//	     &max_frontier= (objective=pareto only) bounds the frontier
//	     record with deterministic eviction.
//	     algo=racing races K-L and the genetic baseline against the
//	     exact engine per block (each heuristic answer seeds the exact
//	     search's best-bound) and interleaves "frontier"
//	     records marked anytime/optimal as each racer publishes; the
//	     block records stay bit-identical to algo=exact. &deadline= (a Go
//	     duration, e.g. 200ms; racing only) bounds each block's race —
//	     on expiry the stream carries the best anytime answer instead of
//	     the proven optimum. /v1/metrics reports the seeding
//	     effectiveness (seed bound, raises, seeded vs unseeded explored
//	     node counts).
//	     &objective= selects the scoring objective (merit, reuse, area,
//	     energy, latency, class, pareto; parameterized by &gate_penalty=,
//	     &latency_budget=, &class_weights=memory=0.5,compute=2). An
//	     explicit objective extends each selection with its objective
//	     vector; objective=pareto inserts a "frontier" record (the
//	     non-dominated candidates) before the summary. Engines other
//	     than isegen accept only objective=merit. The default stream is
//	     unchanged and stays bit-identical to `isegen -json`.
//	GET  /v1/metrics    queue/cache/racing/runtime/search statistics (JSON,
//	     including engine-internal counters and fixed-bucket latency and
//	     queue-wait histograms)
//	GET  /metrics       Prometheus text exposition of the same data
//	GET  /healthz       readiness probe: 503 with a JSON reason while the
//	     persistent store is loading or the queue is saturated, 200
//	     otherwise; ?live=1 is the always-200 liveness probe
//
// -pprof addr serves net/http/pprof on a separate listener (e.g.
// -pprof localhost:6060), keeping the profiling surface off the API
// port: CPU/heap/goroutine profiles at /debug/pprof/ without exposing
// them to API clients.
//
// With -cache-dir, cut costings persist on disk keyed by canonical block
// hash (size-bounded, LRU-evicted), so repeated sweeps over the same
// application skip cut costing entirely — even across daemon restarts.
//
// Example:
//
//	isegend -addr :8080 -cache-dir /var/cache/isegend &
//	isegen -json file.dfg > offline.ndjson
//	curl -sS --data-binary @file.dfg 'localhost:8080/v1/select' > served.ndjson
//	diff offline.ndjson served.ndjson   # empty: determinism contract
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (the -pprof listener only)
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/search"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		queueCap   = flag.Int("queue", 64, "bounded FIFO capacity; further submissions get 503")
		jobs       = flag.Int("jobs", 2, "jobs executed concurrently (queue workers)")
		budget     = flag.Int("tenant-budget", 1, "max concurrently running jobs per tenant")
		workers    = flag.Int("workers", 0, "per-job search worker pool bound (0 = one per CPU core)")
		cacheDir   = flag.String("cache-dir", "", "persist cut costings under this directory (empty = memory only)")
		cacheBytes = flag.Int64("cache-bytes", search.DefaultStoreBytes, "disk cache size bound in bytes (LRU-evicted; negative = unbounded)")
		maxBody    = flag.Int64("max-body", 16<<20, "maximum upload size in bytes")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty = disabled)")
		jobDeadl   = flag.Duration("job-deadline", 0, "server-enforced per-job run deadline (e.g. 30s; 0 = none); expiry returns 504 or an in-stream error record")
		cacheFsync = flag.Bool("cache-fsync", false, "fsync cache entry files before the atomic rename (crash durability at write-latency cost)")
	)
	flag.Parse()
	if err := run(*addr, *queueCap, *jobs, *budget, *workers, *cacheDir, *cacheBytes, *maxBody, *pprofAddr, *jobDeadl, *cacheFsync); err != nil {
		fmt.Fprintln(os.Stderr, "isegend:", err)
		os.Exit(1)
	}
}

func run(addr string, queueCap, jobs, budget, workers int, cacheDir string, cacheBytes, maxBody int64, pprofAddr string, jobDeadline time.Duration, cacheFsync bool) error {
	if pprofAddr != "" {
		// The API handler is a custom mux, so the pprof handlers (which
		// the blank net/http/pprof import registers on DefaultServeMux)
		// are reachable only through this listener — the profiling
		// surface never leaks onto the API port.
		go func() {
			log.Printf("pprof listening on %s", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}
	var store *search.Store
	if cacheDir != "" {
		var err error
		if store, err = search.NewStoreOptions(cacheDir, cacheBytes, search.StoreOptions{Fsync: cacheFsync}); err != nil {
			return err
		}
		log.Printf("persistent cost cache at %s (bound %d bytes, fsync %v)", cacheDir, cacheBytes, cacheFsync)
	}
	srv := service.NewServer(service.Config{
		QueueCapacity: queueCap,
		Workers:       jobs,
		TenantBudget:  budget,
		RunnerWorkers: workers,
		Cache:         search.NewPersistentCostCache(store),
		MaxBodyBytes:  maxBody,
		JobDeadline:   jobDeadline,
	})

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("isegend listening on %s (queue %d, jobs %d, tenant budget %d)", addr, queueCap, jobs, budget)

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := hs.Shutdown(shutCtx)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Graceful drain timed out: force-close the connections so the
		// in-flight request contexts cancel and the queue workers'
		// searches abort — otherwise srv.Close below would wait for a
		// long-running job with nothing left to cancel it.
		log.Printf("graceful drain incomplete (%v); closing connections", err)
		_ = hs.Close()
	}
	srv.Close() // drains workers, flushes the cache to disk
	return nil
}
