// Command dfgfuzz drives long differential soak runs: it generates random
// DFG blocks (internal/dfggen) across a deterministic seed range, runs
// each through the cross-engine invariant matrix (internal/difftest), and
// on a violation delta-debugs the block to a minimal reproducer and
// serializes it as an annotated .dfg file.
//
// Typical runs:
//
//	dfgfuzz -seeds 10000                      # fixed-count soak, full matrix
//	dfgfuzz -budget 30s                       # wall-clock-bounded soak
//	dfgfuzz -seeds 2000 -engines exact,racing # subset of the engine matrix
//	dfgfuzz -seeds 500 -full-ga               # registry-default genetic params
//	dfgfuzz -seeds 1000 -out internal/difftest/testdata  # write reproducers
//
// Exit status is 0 for a clean soak, 1 when any invariant violation was
// found, 2 for usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dfggen"
	"repro/internal/dfgio"
	"repro/internal/difftest"
	"repro/internal/genetic"
	"repro/internal/search"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 1000, "number of generated blocks (0 = unbounded, needs -budget)")
		seedBase = flag.Int64("seed-base", 1, "first generator seed; block k uses seed seed-base+k")
		budget   = flag.Duration("budget", 0, "wall-clock bound for the soak (0 = none)")
		engines  = flag.String("engines", strings.Join(difftest.EnginesAll, ","),
			"comma-separated engine registry names to cross-check")
		minNodes = flag.Int("min-nodes", 0, "override generator min node count (0 = default)")
		maxNodes = flag.Int("max-nodes", 0, "override generator max node count (0 = default)")
		memFrac  = flag.Float64("mem", -1, "override memory-op fraction (-1 = default)")
		maxIn    = flag.Int("maxin", 4, "INmax port constraint")
		maxOut   = flag.Int("maxout", 2, "OUTmax port constraint")
		nise     = flag.Int("nise", 2, "AFU budget (cuts per block)")
		workers  = flag.Int("par", 3, "worker count of the parallel determinism arm (<2 disables)")
		fullGA   = flag.Bool("full-ga", false, "use the genetic registry defaults instead of the reduced soak parameters")
		noShrink = flag.Bool("no-shrink", false, "report violations without delta-debugging them")
		outDir   = flag.String("out", "", "directory to write minimized reproducers into (empty = report only)")
		stream   = flag.Int("stream-every", 0, "also stream-check a generated application every N blocks (0 = off)")
		verbose  = flag.Bool("v", false, "log every block")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "dfgfuzz: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	if *seeds <= 0 && *budget <= 0 {
		fmt.Fprintln(os.Stderr, "dfgfuzz: need -seeds > 0 or a -budget")
		os.Exit(2)
	}

	cfg := difftest.DefaultConfig()
	cfg.MaxIn, cfg.MaxOut, cfg.NISE, cfg.ParWorkers = *maxIn, *maxOut, *nise, *workers
	cfg.Engines = nil
	for _, name := range strings.Split(*engines, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := search.New(name, nil); err != nil {
			fmt.Fprintf(os.Stderr, "dfgfuzz: %v\n", err)
			os.Exit(2)
		}
		cfg.Engines = append(cfg.Engines, name)
	}
	if len(cfg.Engines) == 0 {
		fmt.Fprintln(os.Stderr, "dfgfuzz: -engines selected nothing")
		os.Exit(2)
	}
	if *fullGA {
		// The zero Options take the registry defaults (genetic fills
		// Pop=96, MaxGen=220 and friends on zero values).
		cfg.GeneticOpt = &genetic.Options{}
	}

	p := dfggen.DefaultParams()
	if *minNodes > 0 {
		p.MinNodes = *minNodes
	}
	if *maxNodes > 0 {
		p.MaxNodes = *maxNodes
		if p.MinNodes > p.MaxNodes {
			p.MinNodes = p.MaxNodes
		}
	}
	if *memFrac >= 0 {
		p.MemFrac = *memFrac
	}

	start := time.Now()
	deadline := time.Time{}
	if *budget > 0 {
		deadline = start.Add(*budget)
	}
	blocks, violations, written := 0, 0, 0
	for k := 0; ; k++ {
		if *seeds > 0 && k >= *seeds {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		seed := *seedBase + int64(k)
		blk := dfggen.Block(dfggen.Seeded(seed), p)
		blocks++
		vs := difftest.CheckBlock(blk, cfg)
		if *verbose {
			fmt.Printf("seed %d: %d nodes, %d violations\n", seed, blk.N(), len(vs))
		} else if blocks%500 == 0 {
			fmt.Printf("... %d blocks, %d violations, %.0f blocks/s\n",
				blocks, violations, float64(blocks)/time.Since(start).Seconds())
		}
		if len(vs) > 0 {
			violations += len(vs)
			fmt.Printf("seed %d (%d nodes): %d violation(s)\n", seed, blk.N(), len(vs))
			for _, v := range vs {
				fmt.Printf("  %s\n", v)
			}
			min := blk
			kept := vs
			if !*noShrink {
				min, kept = difftest.ShrinkToViolation(blk, cfg, vs[0])
				if len(kept) == 0 {
					// The violation did not survive shrinking (it should:
					// the property is deterministic); fall back to the
					// original block so the evidence is not lost.
					min, kept = blk, vs
					fmt.Println("  (violation did not reproduce under shrinking; keeping the full block)")
				} else {
					fmt.Printf("  shrunk %d → %d nodes\n", blk.N(), min.N())
				}
			}
			if *outDir != "" {
				foundBy := fmt.Sprintf("dfgfuzz seed=%d engines=%s", seed, *engines)
				path, err := difftest.WriteReproducer(*outDir, min, kept, foundBy)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dfgfuzz: writing reproducer: %v\n", err)
				} else {
					written++
					fmt.Printf("  reproducer: %s\n", path)
				}
			} else {
				var sb strings.Builder
				if err := dfgio.Write(&sb, min); err == nil {
					fmt.Printf("  minimized reproducer:\n%s", indent(sb.String()))
				}
			}
		}
		if *stream > 0 && blocks%*stream == 0 {
			app := dfggen.Application(dfggen.Seeded(-seed), p)
			for _, algo := range []string{"isegen", "exact", "iterative", "genetic"} {
				for _, v := range difftest.CheckApplicationStream(app, algo, cfg.ParWorkers) {
					violations++
					fmt.Printf("app seed %d: %s\n", -seed, v)
				}
			}
		}
	}

	elapsed := time.Since(start)
	fmt.Printf("soak: %d blocks in %v (%.0f blocks/s), engines [%s], %d invariant violations",
		blocks, elapsed.Round(time.Millisecond), float64(blocks)/elapsed.Seconds(),
		strings.Join(cfg.Engines, " "), violations)
	if written > 0 {
		fmt.Printf(", %d reproducers written to %s", written, *outDir)
	}
	fmt.Println()
	if violations > 0 {
		os.Exit(1)
	}
}

// indent prefixes every line for the inline reproducer dump.
func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ") + "\n"
}
