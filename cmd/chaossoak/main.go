// Command chaossoak runs the seeded fault-injection soak against an
// in-process isegend server: generated applications are served while
// the disk and the job pipeline are both hostile, the server is then
// crashed, its surviving cache files poisoned on disk, and a fresh
// server over the same directory must quarantine the poison and answer
// byte-identically to the offline reference.
//
// The fault clock is (seed, fault point, op counter) — never wall
// time — so a failing seed replays exactly:
//
//	chaossoak -seed 7 -apps 8 -requests 64 -v
//
// Exit status 1 means at least one serving invariant was violated; the
// violations are printed, and the seed reproduces them.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "soak seed: drives app generation and both fault clocks")
		apps     = flag.Int("apps", 4, "generated applications in the corpus")
		requests = flag.Int("requests", 0, "hostile-phase requests (0 = 8 per app)")
		deadline = flag.Duration("deadline", 500*time.Millisecond, "server-enforced job deadline (bounds injected stalls)")
		dir      = flag.String("dir", "", "persistent store directory (empty = private temp dir)")
		verbose  = flag.Bool("v", false, "log soak progress")
	)
	flag.Parse()
	cfg := chaos.Config{
		Seed:        *seed,
		Apps:        *apps,
		Requests:    *requests,
		JobDeadline: *deadline,
		Dir:         *dir,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	res, err := chaos.Soak(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak:", err)
		os.Exit(2)
	}
	fmt.Printf("seed %d: %d hostile requests — %d clean, %d mid-stream faulted, %d failed, %d rejected; %d serve + %d disk faults fired\n",
		*seed, res.Requests, res.Clean, res.MidStream, res.Failed, res.Rejected, res.ServeFires, res.DiskFires)
	fmt.Printf("crash + poison: %d entry files poisoned, %d quarantined on recovery; %d recovery requests byte-checked\n",
		res.Poisoned, res.RecoveredStore.Corrupt, res.Recovery)
	if len(res.Violations) > 0 {
		fmt.Printf("%d INVARIANT VIOLATIONS:\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Println("  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("all serving invariants held")
}
