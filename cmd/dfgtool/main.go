// Command dfgtool manipulates .dfg files and the built-in benchmark suite.
//
// Usage:
//
//	dfgtool list                        list built-in benchmarks
//	dfgtool engines                     list search engines (for isegen -algo)
//	dfgtool gen [-o file] <benchmark>   write a built-in benchmark as .dfg
//	dfgtool check <file.dfg>            parse and validate a .dfg file
//	dfgtool dot [-o file] <file.dfg>    render the first block as Graphviz
//	dfgtool stats <file.dfg>            per-block node/edge/latency stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	isegen "repro"
	"repro/internal/kernels"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	outPath := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(os.Args[2:])

	var err error
	switch cmd {
	case "list":
		for _, s := range kernels.All() {
			fmt.Printf("%-16s critical block %d nodes, %d blocks\n", s.Name, s.CriticalSize, len(s.App.Blocks))
		}
		fmt.Printf("%-16s critical block %d nodes, %d blocks\n", "aes", 696, len(kernels.AES().Blocks))
	case "engines":
		for _, name := range isegen.SearchEngineNames() {
			limit := "no block-size limit"
			if n := isegen.DefaultNodeLimit(name); n > 0 {
				limit = fmt.Sprintf("blocks up to ~%d nodes", n)
			}
			fmt.Printf("%-12s %s\n", name, limit)
		}
	case "gen":
		err = gen(fs.Arg(0), *outPath)
	case "check":
		err = check(fs.Arg(0))
	case "dot":
		err = dot(fs.Arg(0), *outPath)
	case "stats":
		err = stats(fs.Arg(0))
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfgtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dfgtool list
  dfgtool engines
  dfgtool gen [-o file] <benchmark>
  dfgtool check <file.dfg>
  dfgtool dot [-o file] <file.dfg>
  dfgtool stats <file.dfg>`)
}

func output(path string) (io.WriteCloser, error) {
	if path == "" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

func findApp(name string) (*isegen.Application, error) {
	if name == "aes" {
		return kernels.AES(), nil
	}
	for _, s := range kernels.All() {
		if s.Name == name {
			return s.App, nil
		}
	}
	return nil, fmt.Errorf("unknown benchmark %q (try 'dfgtool list')", name)
}

func gen(name, outPath string) error {
	app, err := findApp(name)
	if err != nil {
		return err
	}
	w, err := output(outPath)
	if err != nil {
		return err
	}
	if w != os.Stdout {
		defer w.Close()
	}
	return isegen.WriteApplication(w, app)
}

func parse(path string) (*isegen.Application, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return isegen.ParseApplication(path, f)
}

func check(path string) error {
	app, err := parse(path)
	if err != nil {
		return err
	}
	model := isegen.DefaultModel()
	for _, blk := range app.Blocks {
		if err := model.Validate(blk); err != nil {
			return err
		}
	}
	fmt.Printf("%s: OK (%d blocks, largest %d nodes)\n", path, len(app.Blocks), app.MaxBlockSize())
	return nil
}

func dot(path, outPath string) error {
	app, err := parse(path)
	if err != nil {
		return err
	}
	w, err := output(outPath)
	if err != nil {
		return err
	}
	if w != os.Stdout {
		defer w.Close()
	}
	return isegen.WriteDOT(w, app.Blocks[0], nil)
}

func stats(path string) error {
	app, err := parse(path)
	if err != nil {
		return err
	}
	model := isegen.DefaultModel()
	fmt.Printf("%-28s %6s %6s %6s %8s %8s\n", "block", "nodes", "edges", "inputs", "freq", "swlat")
	for _, blk := range app.Blocks {
		fmt.Printf("%-28s %6d %6d %6d %8g %8d\n",
			blk.Name, blk.N(), blk.DAG().NumEdges(), blk.NumInputs, blk.Freq, model.BlockSWLat(blk))
	}
	return nil
}
