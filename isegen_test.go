package isegen_test

import (
	"bytes"
	"strings"
	"testing"

	isegen "repro"
	"repro/internal/kernels"
)

// buildMACApp returns a one-block application through the public API only.
func buildMACApp(t *testing.T) *isegen.Application {
	t.Helper()
	bu := isegen.NewBuilder("hot", 100)
	a, b, acc := bu.Input("a"), bu.Input("b"), bu.Input("acc")
	s := bu.Add(bu.Mul(a, b), acc)
	bu.LiveOut(s)
	blk, err := bu.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &isegen.Application{Name: "mac", Blocks: []*isegen.Block{blk}}
}

func TestGenerateFacade(t *testing.T) {
	app := buildMACApp(t)
	res, err := isegen.Generate(app, isegen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selections) == 0 {
		t.Fatal("no ISEs found")
	}
	if res.Report.Speedup <= 1 {
		t.Errorf("speedup = %v, want > 1", res.Report.Speedup)
	}
	sim, err := isegen.Simulate(app, isegen.DefaultModel(), res.Selections)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Speedup <= 1 {
		t.Errorf("simulated speedup = %v, want > 1", sim.Speedup)
	}
}

func TestGenerateCutsOnlyAndEvaluate(t *testing.T) {
	app := buildMACApp(t)
	cuts, err := isegen.GenerateCutsOnly(app, isegen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) == 0 {
		t.Fatal("no cuts")
	}
	rep, err := isegen.EvaluateCuts(app, isegen.DefaultModel(), cuts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup <= 1 {
		t.Errorf("speedup = %v", rep.Speedup)
	}
}

func TestBaselinesThroughFacade(t *testing.T) {
	app := buildMACApp(t)
	blk := app.Blocks[0]
	model := isegen.DefaultModel()

	ex, err := isegen.ExactSingleCut(blk, isegen.ExactOptions{MaxIn: 4, MaxOut: 2, Model: model}, nil)
	if err != nil || ex == nil {
		t.Fatalf("ExactSingleCut: %v, %v", ex, err)
	}
	it, err := isegen.ExactIterative(blk, isegen.ExactOptions{MaxIn: 4, MaxOut: 2, Model: model}, 2)
	if err != nil || len(it) == 0 {
		t.Fatalf("ExactIterative: %v, %v", it, err)
	}
	mc, err := isegen.ExactMultiCut(blk, isegen.ExactOptions{MaxIn: 4, MaxOut: 2, Model: model}, 2)
	if err != nil || len(mc) == 0 {
		t.Fatalf("ExactMultiCut: %v, %v", mc, err)
	}
	ga, err := isegen.GeneticIterative(blk, isegen.GeneticOptions{MaxIn: 4, MaxOut: 2, Model: model, Seed: 7}, 2)
	if err != nil || len(ga) == 0 {
		t.Fatalf("GeneticIterative: %v, %v", ga, err)
	}
	// All approaches find the same optimal merit on the tiny MAC.
	if ex.Merit() != it[0].Merit() || ex.Merit() != ga[0].Merit() {
		t.Errorf("merits differ: exact %v iterative %v genetic %v",
			ex.Merit(), it[0].Merit(), ga[0].Merit())
	}
}

func TestSerializationRoundTripFacade(t *testing.T) {
	app := buildMACApp(t)
	var buf bytes.Buffer
	if err := isegen.WriteApplication(&buf, app); err != nil {
		t.Fatal(err)
	}
	got, err := isegen.ParseApplication("mac", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxBlockSize() != app.MaxBlockSize() {
		t.Error("round trip changed the application")
	}
	var dot bytes.Buffer
	if err := isegen.WriteDOT(&dot, got.Blocks[0], nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Error("DOT output malformed")
	}
}

func TestFindInstancesFacade(t *testing.T) {
	// Two identical MACs: the cut found on one must match both.
	bu := isegen.NewBuilder("twomacs", 10)
	acc := bu.Input("acc")
	a, b := bu.Input("a"), bu.Input("b")
	s1 := bu.Add(bu.Mul(a, b), acc)
	c, d := bu.Input("c"), bu.Input("d")
	s2 := bu.Add(bu.Mul(c, d), acc)
	bu.LiveOut(s1, s2)
	blk, err := bu.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &isegen.Application{Name: "two", Blocks: []*isegen.Block{blk}}

	cut := isegen.NewBitSet(blk.N())
	cut.Set(0)
	cut.Set(1)
	insts := isegen.FindInstances(app, 0, cut, 0)
	if len(insts) != 2 {
		t.Fatalf("found %d instances, want 2", len(insts))
	}
}

// The full pipeline on a real benchmark through the facade.
func TestGenerateOnBenchmark(t *testing.T) {
	app := kernels.Viterb00()
	res, err := isegen.Generate(app, isegen.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Speedup <= 1.2 {
		t.Errorf("viterb00 speedup = %v, want > 1.2", res.Report.Speedup)
	}
	sim, err := isegen.Simulate(app, isegen.DefaultModel(), res.Selections)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Report.Speedup - sim.Speedup; d > 0.05 || d < -0.05 {
		t.Errorf("estimate %.3f vs simulated %.3f diverge", res.Report.Speedup, sim.Speedup)
	}
}
